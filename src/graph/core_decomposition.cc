#include "graph/core_decomposition.h"

#include <algorithm>

#include "baselines/addressable_heap.h"
#include "core/frequency_profile.h"
#include "util/logging.h"

namespace sprofile {
namespace graph {

std::vector<uint32_t> CoreNumbersSProfile(const Graph& g) {
  const uint32_t n = g.num_vertices();
  std::vector<uint32_t> core(n, 0);
  if (n == 0) return core;

  FrequencyProfile profile = FrequencyProfile::FromFrequencies(g.DegreeVector());
  int64_t level = 0;
  for (uint32_t step = 0; step < n; ++step) {
    const FrequencyEntry peeled = profile.PeelMin();
    level = std::max(level, peeled.frequency);
    core[peeled.id] = static_cast<uint32_t>(level);
    for (uint32_t u : g.Neighbors(peeled.id)) {
      if (!profile.IsFrozen(u)) profile.Remove(u);
    }
  }
  return core;
}

std::vector<uint32_t> CoreNumbersHeap(const Graph& g) {
  const uint32_t n = g.num_vertices();
  std::vector<uint32_t> core(n, 0);
  if (n == 0) return core;

  baselines::AddressableHeap<baselines::HeapKind::kMin, 2> heap(n);
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t d = g.Degree(v);
    for (uint32_t i = 0; i < d; ++i) heap.Add(v);
  }
  std::vector<bool> gone(n, false);
  int64_t level = 0;
  for (uint32_t step = 0; step < n; ++step) {
    const FrequencyEntry peeled = heap.PopTop();
    gone[peeled.id] = true;
    level = std::max(level, peeled.frequency);
    core[peeled.id] = static_cast<uint32_t>(level);
    for (uint32_t u : g.Neighbors(peeled.id)) {
      if (!gone[u]) heap.Remove(u);
    }
  }
  return core;
}

std::vector<uint32_t> CoreNumbersBucket(const Graph& g) {
  // Batagelj & Zaversnik 2003: counting-sort vertices by degree, then peel
  // in order, moving each touched neighbor one bucket down.
  const uint32_t n = g.num_vertices();
  std::vector<uint32_t> core(n, 0);
  if (n == 0) return core;

  uint32_t max_degree = 0;
  std::vector<uint32_t> degree(n);
  for (uint32_t v = 0; v < n; ++v) {
    degree[v] = g.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }

  // bin[d] = start offset of degree-d vertices in `order`.
  std::vector<uint32_t> bin(max_degree + 2, 0);
  for (uint32_t v = 0; v < n; ++v) bin[degree[v] + 1] += 1;
  for (uint32_t d = 1; d < bin.size(); ++d) bin[d] += bin[d - 1];

  std::vector<uint32_t> order(n);     // vertices sorted by current degree
  std::vector<uint32_t> pos(n);       // vertex -> index in order
  {
    std::vector<uint32_t> cursor(bin.begin(), bin.end() - 1);
    for (uint32_t v = 0; v < n; ++v) {
      pos[v] = cursor[degree[v]];
      order[pos[v]] = v;
      cursor[degree[v]] += 1;
    }
  }

  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t v = order[i];
    core[v] = degree[v];
    for (uint32_t u : g.Neighbors(v)) {
      if (degree[u] <= degree[v]) continue;
      // Swap u with the first vertex of its degree bucket, then shrink
      // the bucket boundary so u drops one degree class.
      const uint32_t du = degree[u];
      const uint32_t pu = pos[u];
      const uint32_t pw = bin[du];
      const uint32_t w = order[pw];
      if (u != w) {
        order[pu] = w;
        order[pw] = u;
        pos[u] = pw;
        pos[w] = pu;
      }
      bin[du] += 1;
      degree[u] -= 1;
    }
  }

  // BZ's conditional decrement keeps degree[] clamped at the peel level, so
  // core[v] = degree[v] at peel time is already the core number.
  return core;
}

uint32_t Degeneracy(const std::vector<uint32_t>& core_numbers) {
  if (core_numbers.empty()) return 0;
  return *std::max_element(core_numbers.begin(), core_numbers.end());
}

std::vector<uint32_t> DegeneracyOrdering(const Graph& g) {
  const uint32_t n = g.num_vertices();
  std::vector<uint32_t> order;
  order.reserve(n);
  if (n == 0) return order;

  FrequencyProfile profile = FrequencyProfile::FromFrequencies(g.DegreeVector());
  for (uint32_t step = 0; step < n; ++step) {
    const FrequencyEntry peeled = profile.PeelMin();
    order.push_back(peeled.id);
    for (uint32_t u : g.Neighbors(peeled.id)) {
      if (!profile.IsFrozen(u)) profile.Remove(u);
    }
  }
  return order;
}

std::vector<uint32_t> KCoreVertices(const std::vector<uint32_t>& core_numbers,
                                    uint32_t k) {
  std::vector<uint32_t> vertices;
  for (uint32_t v = 0; v < core_numbers.size(); ++v) {
    if (core_numbers[v] >= k) vertices.push_back(v);
  }
  return vertices;
}

DensestSubgraphResult DensestSubgraphGreedy(const Graph& g) {
  DensestSubgraphResult result;
  const uint32_t n = g.num_vertices();
  if (n == 0) return result;

  FrequencyProfile profile = FrequencyProfile::FromFrequencies(g.DegreeVector());
  uint64_t edges_left = g.num_edges();
  uint32_t vertices_left = n;

  double best_density =
      vertices_left > 0 ? static_cast<double>(edges_left) / vertices_left : 0.0;
  uint32_t best_prefix = 0;  // number of peels performed at the best point

  std::vector<uint32_t> peel_order;
  peel_order.reserve(n);
  for (uint32_t step = 0; step + 1 < n; ++step) {
    const FrequencyEntry peeled = profile.PeelMin();
    peel_order.push_back(peeled.id);
    // The peeled vertex's current degree counts exactly the edges it still
    // had into the remaining subgraph.
    edges_left -= static_cast<uint64_t>(peeled.frequency);
    vertices_left -= 1;
    for (uint32_t u : g.Neighbors(peeled.id)) {
      if (!profile.IsFrozen(u)) profile.Remove(u);
    }
    const double density = static_cast<double>(edges_left) / vertices_left;
    if (density > best_density) {
      best_density = density;
      best_prefix = step + 1;
    }
  }

  result.density = best_density;
  // Best subgraph = all vertices not among the first `best_prefix` peels.
  std::vector<bool> removed(n, false);
  for (uint32_t i = 0; i < best_prefix; ++i) removed[peel_order[i]] = true;
  for (uint32_t v = 0; v < n; ++v) {
    if (!removed[v]) result.vertices.push_back(v);
  }
  return result;
}

double DensestSubgraphBruteForce(const Graph& g) {
  const uint32_t n = g.num_vertices();
  SPROFILE_CHECK_MSG(n <= 24, "brute force is exponential; use tiny graphs");
  double best = 0.0;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    uint32_t vertices = 0;
    uint32_t edges = 0;
    for (uint32_t v = 0; v < n; ++v) {
      if ((mask & (1u << v)) == 0) continue;
      ++vertices;
      for (uint32_t u : g.Neighbors(v)) {
        if (u > v && (mask & (1u << u)) != 0) ++edges;
      }
    }
    best = std::max(best, static_cast<double>(edges) / vertices);
  }
  return best;
}

}  // namespace graph
}  // namespace sprofile
