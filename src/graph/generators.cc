#include "graph/generators.h"

#include <unordered_set>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace sprofile {
namespace graph {

Graph ErdosRenyi(uint32_t num_vertices, uint64_t num_edges, uint64_t seed) {
  SPROFILE_CHECK(num_vertices >= 2);
  const uint64_t max_edges =
      static_cast<uint64_t>(num_vertices) * (num_vertices - 1) / 2;
  SPROFILE_CHECK_MSG(num_edges <= max_edges, "more edges than the clique holds");

  Xoshiro256PlusPlus rng(seed);
  GraphBuilder builder(num_vertices);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  uint64_t placed = 0;
  while (placed < num_edges) {
    uint32_t u = static_cast<uint32_t>(rng.NextBounded(num_vertices));
    uint32_t v = static_cast<uint32_t>(rng.NextBounded(num_vertices));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (!seen.insert(key).second) continue;
    SPROFILE_CHECK(builder.AddEdge(u, v).ok());
    ++placed;
  }
  return builder.Build();
}

Graph BarabasiAlbert(uint32_t num_vertices, uint32_t edges_per_vertex,
                     uint64_t seed) {
  SPROFILE_CHECK(edges_per_vertex >= 1);
  SPROFILE_CHECK(num_vertices > edges_per_vertex);

  Xoshiro256PlusPlus rng(seed);
  GraphBuilder builder(num_vertices);

  // `attachment` holds one entry per edge endpoint, so uniform sampling
  // from it is degree-proportional sampling (the standard BA trick).
  std::vector<uint32_t> attachment;
  attachment.reserve(static_cast<size_t>(num_vertices) * edges_per_vertex * 2);

  // Seed clique over vertices [0, edges_per_vertex].
  const uint32_t clique = edges_per_vertex + 1;
  for (uint32_t u = 0; u < clique; ++u) {
    for (uint32_t v = u + 1; v < clique; ++v) {
      SPROFILE_CHECK(builder.AddEdge(u, v).ok());
      attachment.push_back(u);
      attachment.push_back(v);
    }
  }

  std::vector<uint32_t> chosen;
  for (uint32_t v = clique; v < num_vertices; ++v) {
    chosen.clear();
    // Draw `edges_per_vertex` distinct targets degree-proportionally.
    while (chosen.size() < edges_per_vertex) {
      const uint32_t candidate =
          attachment[rng.NextBounded(attachment.size())];
      bool duplicate = false;
      for (uint32_t c : chosen) {
        if (c == candidate) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) chosen.push_back(candidate);
    }
    for (uint32_t target : chosen) {
      SPROFILE_CHECK(builder.AddEdge(v, target).ok());
      attachment.push_back(v);
      attachment.push_back(target);
    }
  }
  return builder.Build();
}

}  // namespace graph
}  // namespace sprofile
