// Random graph generators for the shaving benchmarks.
//
// Erdős–Rényi G(n, M) gives the homogeneous-degree regime; Barabási–Albert
// preferential attachment gives the power-law regime fraud-detection
// workloads ([9, 14] in the paper) actually see.

#ifndef SPROFILE_GRAPH_GENERATORS_H_
#define SPROFILE_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace sprofile {
namespace graph {

/// Erdős–Rényi with exactly `num_edges` distinct edges (G(n, M) model),
/// sampled uniformly via rejection. num_edges must be achievable
/// (<= n(n-1)/2); duplicates are resampled.
Graph ErdosRenyi(uint32_t num_vertices, uint64_t num_edges, uint64_t seed);

/// Barabási–Albert preferential attachment: starts from a
/// (edges_per_vertex + 1)-clique, then each new vertex attaches to
/// `edges_per_vertex` distinct existing vertices with probability
/// proportional to degree.
Graph BarabasiAlbert(uint32_t num_vertices, uint32_t edges_per_vertex,
                     uint64_t seed);

}  // namespace graph
}  // namespace sprofile

#endif  // SPROFILE_GRAPH_GENERATORS_H_
