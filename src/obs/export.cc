#include "sprofile/obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <thread>
#include <utility>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace sprofile {
namespace obs {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Prometheus HELP text escaping: backslash and newline only (spec 0.0.4).
std::string PromEscapeHelp(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string_view KindName(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
    case MetricKind::kCallbackGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

void AppendJsonLine(std::string& out, std::string_view source,
                    std::string_view metric, std::string_view kind,
                    std::string_view unit, uint64_t tick, int64_t value) {
  char buf[64];
  out += "{\"bench\":\"";
  out += JsonEscape(source);
  out += "\",\"metric\":\"";
  out += JsonEscape(metric);
  out += "\",\"value\":";
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out += buf;
  out += ",\"scale\":\"obs\",\"kind\":\"";
  out += kind;
  out += "\",\"unit\":\"";
  out += JsonEscape(unit);
  out += "\",\"tick\":";
  std::snprintf(buf, sizeof(buf), "%" PRIu64, tick);
  out += buf;
  out += "}\n";
}

}  // namespace

std::string ToJsonLines(const MetricsSnapshot& snap, std::string_view source,
                        uint64_t tick) {
  std::string out;
  for (const MetricSample& s : snap.samples) {
    switch (s.kind) {
      case MetricKind::kCounter:
        AppendJsonLine(out, source, s.name, "counter", s.unit, tick,
                       static_cast<int64_t>(s.count));
        break;
      case MetricKind::kGauge:
      case MetricKind::kCallbackGauge:
        AppendJsonLine(out, source, s.name, "gauge", s.unit, tick, s.value);
        break;
      case MetricKind::kHistogram: {
        // Three derived series per histogram: the count is monotone (CI
        // treats *_count like a counter), the sum tracks load, and the
        // p99 upper bound is the dashboard-facing latency signal.
        AppendJsonLine(out, source, s.name + "_count", "histogram", s.unit,
                       tick, static_cast<int64_t>(s.count));
        AppendJsonLine(out, source, s.name + "_sum", "histogram", s.unit,
                       tick, static_cast<int64_t>(s.sum));
        uint64_t p99 = 0;
        if (s.count > 0) {
          uint64_t target = (s.count * 99 + 99) / 100;
          if (target < 1) target = 1;
          if (target > s.count) target = s.count;
          uint64_t cum = 0;
          for (size_t i = 0; i < s.buckets.size(); ++i) {
            cum += s.buckets[i];
            if (cum >= target) {
              p99 = Histogram::BucketUpperBound(i);
              break;
            }
          }
        }
        AppendJsonLine(out, source, s.name + "_p99_ub", "histogram", s.unit,
                       tick, static_cast<int64_t>(p99));
        break;
      }
    }
  }
  return out;
}

std::string ToPrometheusText(const MetricsSnapshot& snap) {
  std::string out;
  char buf[64];
  for (const MetricSample& s : snap.samples) {
    out += "# HELP " + s.name + " " + PromEscapeHelp(s.help) + "\n";
    out += "# TYPE " + s.name + " ";
    out += KindName(s.kind);
    out += "\n";
    switch (s.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof(buf), "%" PRIu64, s.count);
        out += s.name + " " + buf + "\n";
        break;
      case MetricKind::kGauge:
      case MetricKind::kCallbackGauge:
        std::snprintf(buf, sizeof(buf), "%" PRId64, s.value);
        out += s.name + " " + buf + "\n";
        break;
      case MetricKind::kHistogram: {
        // Cumulative buckets up to the highest populated one, then +Inf.
        size_t last = 0;
        for (size_t i = 0; i < s.buckets.size(); ++i) {
          if (s.buckets[i] != 0) last = i;
        }
        uint64_t cum = 0;
        for (size_t i = 0; i <= last; ++i) {
          cum += s.buckets[i];
          std::snprintf(buf, sizeof(buf), "%" PRIu64,
                        Histogram::BucketUpperBound(i));
          out += s.name + "_bucket{le=\"" + buf + "\"} ";
          std::snprintf(buf, sizeof(buf), "%" PRIu64, cum);
          out += buf;
          out += "\n";
        }
        std::snprintf(buf, sizeof(buf), "%" PRIu64, s.count);
        out += s.name + "_bucket{le=\"+Inf\"} " + buf + "\n";
        std::snprintf(buf, sizeof(buf), "%" PRIu64, s.sum);
        out += s.name + "_sum " + buf + "\n";
        std::snprintf(buf, sizeof(buf), "%" PRIu64, s.count);
        out += s.name + "_count " + buf + "\n";
        break;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// PeriodicExporter
// ---------------------------------------------------------------------------

struct PeriodicExporter::Impl {
  std::chrono::milliseconds interval{1000};
  std::function<void(const MetricsSnapshot&, uint64_t)> sink;

  Mutex mu;
  CondVar cv;
  bool stop SPROFILE_GUARDED_BY(mu) = false;
  bool joined SPROFILE_GUARDED_BY(mu) = false;

  std::atomic<uint64_t> ticks{0};
  std::thread thread;

  void Run() SPROFILE_EXCLUDES(mu) {
    bool done = false;
    while (!done) {
      {
        MutexLock lock(mu);
        if (!stop) cv.WaitFor(mu, interval);
        done = stop;
      }
      // One tick per wakeup; the post-stop pass delivers the final tick
      // so even a shorter-than-interval process lifetime exports once.
      // orders: relaxed — advisory tick count.
      const uint64_t tick = ticks.fetch_add(1, std::memory_order_relaxed) + 1;
      sink(Registry::Global().Snapshot(), tick);
    }
  }
};

PeriodicExporter::PeriodicExporter(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

PeriodicExporter::~PeriodicExporter() { Stop(); }

void PeriodicExporter::Stop() {
  if (impl_ == nullptr) return;
  {
    MutexLock lock(impl_->mu);
    if (impl_->joined) return;
    impl_->stop = true;
    impl_->joined = true;
  }
  impl_->cv.NotifyAll();
  if (impl_->thread.joinable()) impl_->thread.join();
}

uint64_t PeriodicExporter::ticks() const {
  // orders: relaxed — advisory count.
  return impl_ == nullptr ? 0
                          : impl_->ticks.load(std::memory_order_relaxed);
}

std::unique_ptr<PeriodicExporter> StartPeriodicExporter(
    std::chrono::milliseconds interval,
    std::function<void(const MetricsSnapshot&, uint64_t tick)> sink) {
  auto impl = std::make_unique<PeriodicExporter::Impl>();
  impl->interval = interval;
  impl->sink = std::move(sink);
  PeriodicExporter::Impl* raw = impl.get();
  impl->thread = std::thread([raw] { raw->Run(); });
  return std::unique_ptr<PeriodicExporter>(
      new PeriodicExporter(std::move(impl)));
}

}  // namespace obs
}  // namespace sprofile
