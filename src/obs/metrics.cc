#include "sprofile/obs/metrics.h"

#include <algorithm>
#include <utility>

#include "sprofile/obs/trace_ring.h"
#include "util/logging.h"

namespace sprofile {
namespace obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

uint64_t Histogram::ApproxQuantileUpperBound(double q) const {
  uint64_t counts[kHistogramBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    counts[i] = BucketCount(i);
    total += counts[i];
  }
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the quantile element, 1-based, ceil so q=1.0 is the max.
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total));
  if (target < 1) target = 1;
  if (target > total) target = total;
  uint64_t cum = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    cum += counts[i];
    if (cum >= target) return BucketUpperBound(i);
  }
  return BucketUpperBound(kHistogramBuckets - 1);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Registry::Entry {
  std::string name;
  std::string unit;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  // Exactly one of these is set, per kind. unique_ptr keeps the padded
  // instruments off the Entry (stable addresses even if entries_ grows).
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
  struct Callback {
    uint64_t id = 0;
    std::function<int64_t()> fn;
  };
  std::vector<Callback> callbacks;
};

Registry& Registry::Global() {
  // Heap-allocated and never freed: metric references handed out by the
  // SPROFILE_METRIC_* macros must outlive every static destructor that
  // might still record. Reachable through this pointer, so LeakSanitizer
  // does not flag it.
  static Registry* g = new Registry();
  return *g;
}

Registry::Entry& Registry::GetOrCreate(std::string_view name, MetricKind kind,
                                       std::string_view unit,
                                       std::string_view help) {
  for (auto& e : entries_) {
    if (e->name == name) {
      SPROFILE_CHECK(e->kind == kind);
      return *e;
    }
  }
  auto e = std::make_unique<Entry>();
  e->name = std::string(name);
  e->unit = std::string(unit);
  e->help = std::string(help);
  e->kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      e->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      e->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      e->histogram = std::make_unique<Histogram>();
      break;
    case MetricKind::kCallbackGauge:
      break;  // value comes from callbacks at snapshot time
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& Registry::GetCounter(std::string_view name, std::string_view unit,
                              std::string_view help) {
  MutexLock lock(mu_);
  return *GetOrCreate(name, MetricKind::kCounter, unit, help).counter;
}

Gauge& Registry::GetGauge(std::string_view name, std::string_view unit,
                          std::string_view help) {
  MutexLock lock(mu_);
  return *GetOrCreate(name, MetricKind::kGauge, unit, help).gauge;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  std::string_view unit,
                                  std::string_view help) {
  MutexLock lock(mu_);
  return *GetOrCreate(name, MetricKind::kHistogram, unit, help).histogram;
}

CallbackGaugeHandle Registry::AddCallbackGauge(std::string_view name,
                                               std::string_view unit,
                                               std::string_view help,
                                               std::function<int64_t()> fn) {
  MutexLock lock(mu_);
  Entry& e = GetOrCreate(name, MetricKind::kCallbackGauge, unit, help);
  const uint64_t id = next_callback_id_++;
  e.callbacks.push_back({id, std::move(fn)});
  return CallbackGaugeHandle(id);
}

void Registry::RemoveCallback(uint64_t id) {
  MutexLock lock(mu_);
  for (auto& e : entries_) {
    auto& cbs = e->callbacks;
    for (size_t i = 0; i < cbs.size(); ++i) {
      if (cbs[i].id == id) {
        cbs.erase(cbs.begin() + static_cast<ptrdiff_t>(i));
        return;
      }
    }
  }
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snap;
  {
    MutexLock lock(mu_);
    snap.samples.reserve(entries_.size());
    for (const auto& ep : entries_) {
      const Entry& e = *ep;
      // gcc 12 mis-traces e.kind through the unique_ptr indirection and
      // reports -Wmaybe-uninitialized; a concrete reference and local
      // copy keep the (always initialized) load visible to the analysis.
      const MetricKind kind = e.kind;
      MetricSample s;
      s.name = e.name;
      s.kind = kind;
      s.unit = e.unit;
      s.help = e.help;
      switch (kind) {
        case MetricKind::kCounter:
          s.count = e.counter->Value();
          break;
        case MetricKind::kGauge:
          s.value = e.gauge->Value();
          break;
        case MetricKind::kHistogram: {
          s.count = e.histogram->Count();
          s.sum = e.histogram->Sum();
          s.buckets.resize(kHistogramBuckets);
          for (size_t i = 0; i < kHistogramBuckets; ++i) {
            s.buckets[i] = e.histogram->BucketCount(i);
          }
          break;
        }
        case MetricKind::kCallbackGauge: {
          int64_t total = 0;
          for (const auto& cb : e.callbacks) total += cb.fn();
          s.value = total;
          break;
        }
      }
      snap.samples.push_back(std::move(s));
    }
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return snap;
}

const MetricSample* MetricsSnapshot::Find(std::string_view name) const {
  const auto it = std::lower_bound(
      samples.begin(), samples.end(), name,
      [](const MetricSample& s, std::string_view n) { return s.name < n; });
  if (it == samples.end() || it->name != name) return nullptr;
  return &*it;
}

void CallbackGaugeHandle::Release() {
  if (id_ == 0) return;
  Registry::Global().RemoveCallback(id_);
  id_ = 0;
}

// ---------------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------------

std::string_view TraceEventName(TraceEvent ev) {
  switch (ev) {
    case TraceEvent::kPublishBegin:
      return "publish_begin";
    case TraceEvent::kPublishEnd:
      return "publish_end";
    case TraceEvent::kEpochFlip:
      return "epoch_flip";
    case TraceEvent::kCowFault:
      return "cow_fault";
    case TraceEvent::kReflatten:
      return "reflatten";
    case TraceEvent::kConsolidate:
      return "consolidate";
    case TraceEvent::kArenaCreate:
      return "arena_create";
    case TraceEvent::kArenaReclaim:
      return "arena_reclaim";
    case TraceEvent::kSpill:
      return "spill";
    case TraceEvent::kFailpoint:
      return "failpoint";
    case TraceEvent::kDegradedAlloc:
      return "degraded_alloc";
    case TraceEvent::kShed:
      return "shed";
    case TraceEvent::kQuarantine:
      return "quarantine";
  }
  return "unknown";
}

TraceRing& GlobalTraceRing() {
  // Same lifetime contract as Registry::Global(): core layers may trace
  // from static destructors, so the ring is never destroyed.
  static TraceRing* g = new TraceRing(8192);
  return *g;
}

std::vector<TraceRecord> TraceRing::Dump() const {
  std::vector<TraceRecord> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) {
    // orders: acquire pairs with Emit()'s release seq store — a nonzero
    // seq guarantees the field stores below it are visible.
    const uint64_t seq1 = s.seq.load(std::memory_order_acquire);
    if (seq1 == 0) continue;
    TraceRecord r;
    r.seq = seq1 - 1;
    // orders: relaxed — covered by the seq acquire above; a concurrent
    // overwrite can tear this record (documented) but not race it.
    r.ns = s.ns.load(std::memory_order_relaxed);
    r.detail = s.detail.load(std::memory_order_relaxed);
    r.arg = s.arg.load(std::memory_order_relaxed);
    r.event = static_cast<TraceEvent>(s.event.load(std::memory_order_relaxed));
    r.shard = s.shard.load(std::memory_order_relaxed);
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<TraceRecord> MergeTraces(
    const std::vector<std::vector<TraceRecord>>& dumps) {
  std::vector<TraceRecord> out;
  size_t total = 0;
  for (const auto& d : dumps) total += d.size();
  out.reserve(total);
  for (const auto& d : dumps) out.insert(out.end(), d.begin(), d.end());
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              if (a.ns != b.ns) return a.ns < b.ns;
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.seq < b.seq;
            });
  return out;
}

std::string FormatTrace(const std::vector<TraceRecord>& records) {
  std::string out;
  if (records.empty()) return out;
  uint64_t base = records.front().ns;
  for (const TraceRecord& r : records) base = std::min(base, r.ns);
  for (const TraceRecord& r : records) {
    out += "+";
    out += std::to_string(r.ns - base);
    out += "ns shard=";
    if (r.shard == kTraceNoShard) {
      out += "-";
    } else {
      out += std::to_string(r.shard);
    }
    out += " ";
    out += TraceEventName(r.event);
    out += " arg=";
    out += std::to_string(r.arg);
    out += " detail=";
    out += std::to_string(r.detail);
    out += "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace sprofile
