// sprofile::failpoint — compile-time-gated fault-injection registry
// (the libfail / RocksDB fault_injection idiom).
//
// A failpoint is a named site in production code where a test (or the
// chaos harness) can inject a failure:
//
//   if (SPROFILE_FAILPOINT("arena_mmap_fail")) return nullptr;
//
// Sites are declared with the macro and cost NOTHING unless the build
// defines SPROFILE_FAILPOINTS (`cmake -DSPROFILE_FAILPOINTS=ON`): the
// macro expands to the constant `(false)` and the branch dead-codes
// away, so the default build's hot paths are bit-identical to a tree
// with no failpoints at all. With the flag on, each site memoizes a
// registry lookup in a function-local static (exactly the
// SPROFILE_METRIC_* pattern) and the per-call cost is one relaxed
// atomic load while the point is disarmed.
//
// Tests arm points by name with a trigger policy:
//
//   failpoint::Registry::Global().Activate(
//       "engine_ring_push_full", failpoint::Trigger::EveryNth(64));
//   ...
//   failpoint::Registry::Global().DeactivateAll();
//
// Activate() creates the point if no site has executed yet, so a test
// can arm before the code path first runs. Activation, deactivation,
// and ShouldFire() are all thread-safe; ShouldFire() may race
// Activate() from another thread (a fire decided under the old trigger
// may land just after a Deactivate — callers must tolerate one
// straggler, which chaos tests do by quiescing before asserting).
//
// Every fire increments the `sprofile_failpoint_fires` obs counter and
// emits a kFailpoint trace-ring event, so a chaos run's injection
// schedule is reconstructible from the same post-mortem dump as the
// engine's own lifecycle events.
//
// The registry API below compiles in ALL builds (it is tiny and lets
// tests share one source under both configurations); only the macro —
// i.e. the production-code sites — is compile-gated.
//
// Catalog discipline: every name passed to SPROFILE_FAILPOINT must have
// a row in docs/ROBUSTNESS.md (the `failpoint-docs` splint rule, the
// same contract metric-docs enforces for metrics).

#ifndef SPROFILE_UTIL_FAILPOINT_H_
#define SPROFILE_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace sprofile {
namespace failpoint {

/// When an armed point fires, relative to the hits it observes while
/// armed. Hits are only counted while the point is armed (a disarmed
/// site is one relaxed load, no bookkeeping).
struct Trigger {
  enum class Mode : uint8_t {
    kAlways = 0,       // fire on every hit
    kOnce = 1,         // fire on the first hit, then self-disarm
    kEveryNth = 2,     // fire on hits n, 2n, 3n, ...
    kProbability = 3,  // fire on each hit with probability p (seeded)
    kAfterNHits = 4,   // stay quiet for n hits, fire on every later one
  };

  Mode mode = Mode::kAlways;
  uint64_t n = 1;          // period (kEveryNth) or threshold (kAfterNHits)
  double probability = 1;  // kProbability only
  uint64_t seed = 0x9e3779b97f4a7c15ull;

  static Trigger Always() { return {}; }
  static Trigger Once() { return {Mode::kOnce, 1, 1, 0x9e3779b97f4a7c15ull}; }
  static Trigger EveryNth(uint64_t n) {
    return {Mode::kEveryNth, n < 1 ? 1 : n, 1, 0x9e3779b97f4a7c15ull};
  }
  static Trigger Probability(double p, uint64_t seed = 0x9e3779b97f4a7c15ull) {
    return {Mode::kProbability, 1, p, seed};
  }
  static Trigger AfterNHits(uint64_t n) {
    return {Mode::kAfterNHits, n, 1, 0x9e3779b97f4a7c15ull};
  }
};

/// One named injection site. Created on first registry contact
/// (macro-site static init or test Activate) and never destroyed —
/// macro sites cache references for the process lifetime.
class Point {
 public:
  explicit Point(std::string name, uint32_t index)
      : name_(std::move(name)), index_(index) {}

  Point(const Point&) = delete;
  Point& operator=(const Point&) = delete;

  /// The injection decision. Disarmed fast path: one relaxed load.
  bool ShouldFire() {
    // orders: relaxed — armed_ is an advisory gate; all trigger state
    // it protects is re-checked under mu_ in ShouldFireSlow, and a
    // stale false merely skips an injection one hit late.
    if (!armed_.load(std::memory_order_relaxed)) [[likely]] return false;
    return ShouldFireSlow();
  }

  const std::string& name() const { return name_; }
  uint32_t index() const { return index_; }

  /// Lifetime totals (cumulative across re-activations).
  uint64_t fire_count() const {
    // orders: relaxed — advisory counter read by tests after quiescing.
    return fires_.load(std::memory_order_relaxed);
  }
  uint64_t hit_count() const {
    // orders: relaxed — advisory counter, same contract as fires_.
    return hits_.load(std::memory_order_relaxed);
  }

  void Activate(const Trigger& trigger);
  void Deactivate();
  bool armed() const {
    // orders: relaxed — advisory, see ShouldFire.
    return armed_.load(std::memory_order_relaxed);
  }

 private:
  bool ShouldFireSlow();

  const std::string name_;
  const uint32_t index_;
  // orders: this flag gates entry to the mutex-protected slow path; it
  // carries no data dependency, so every access is relaxed.
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> fires_{0};

  Mutex mu_;
  Trigger trigger_ SPROFILE_GUARDED_BY(mu_);
  uint64_t hits_since_arm_ SPROFILE_GUARDED_BY(mu_) = 0;
  uint64_t rng_state_ SPROFILE_GUARDED_BY(mu_) = 0;
};

/// Process-global name -> Point table. Lookup is linear under a mutex:
/// it runs once per macro site (memoized in a static) and per test
/// activation, never per hit.
class Registry {
 public:
  static Registry& Global();

  /// Finds or creates the point. The reference is valid forever.
  Point& GetOrCreate(std::string_view name);

  /// Arms `name` (creating it if no site has executed yet).
  void Activate(std::string_view name, const Trigger& trigger) {
    GetOrCreate(name).Activate(trigger);
  }

  /// Disarms `name`. Returns false if the point was never registered.
  bool Deactivate(std::string_view name);

  /// Disarms every point (test teardown).
  void DeactivateAll();

  /// Lifetime fires of `name`; 0 if never registered.
  uint64_t FireCount(std::string_view name) const;

  /// Names of all registered points, registration order.
  std::vector<std::string> Names() const;

 private:
  Registry() = default;

  mutable Mutex mu_;
  // Pointer stability: points are heap-allocated and never freed.
  std::vector<Point*> points_ SPROFILE_GUARDED_BY(mu_);
};

}  // namespace failpoint
}  // namespace sprofile

#if defined(SPROFILE_FAILPOINTS)
// Memoized site: the registry lookup runs once (thread-safe static
// init), after which a hit is Point::ShouldFire — one relaxed load
// while disarmed.
#define SPROFILE_FAILPOINT(name)                                      \
  ([]() -> bool {                                                     \
    static ::sprofile::failpoint::Point& sprofile_failpoint_site =    \
        ::sprofile::failpoint::Registry::Global().GetOrCreate(name);  \
    return sprofile_failpoint_site.ShouldFire();                      \
  }())
#else
#define SPROFILE_FAILPOINT(name) (false)
#endif

#endif  // SPROFILE_UTIL_FAILPOINT_H_
