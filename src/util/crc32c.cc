#include "util/crc32c.h"

#include <array>

namespace sprofile {
namespace crc32c {

namespace {

// CRC32C polynomial (Castagnoli), reflected representation.
constexpr uint32_t kPoly = 0x82f63b78u;

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  const auto& table = Table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace crc32c
}  // namespace sprofile
