#include "util/random.h"

#include <cmath>

namespace sprofile {

uint64_t Xoshiro256PlusPlus::NextBounded(uint64_t bound) {
  // Lemire 2019: multiply a 64-bit variate by the bound and keep the high
  // word; reject the short low-fringe to remove modulo bias.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Xoshiro256PlusPlus::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method: draw (u, v) in the unit disk, map to two
  // independent N(0,1) variates, cache the second.
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

}  // namespace sprofile
