// A minimal command-line flag parser for the example and benchmark binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name`. Unknown flags are an error so typos do not silently change an
// experiment. Positional arguments are collected in order.

#ifndef SPROFILE_UTIL_FLAGS_H_
#define SPROFILE_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace sprofile {

/// Declarative flag registry + parser.
///
/// Usage:
///   FlagParser flags;
///   int64_t n = 1000000;
///   bool verbose = false;
///   flags.AddInt64("n", &n, "number of stream events");
///   flags.AddBool("verbose", &verbose, "chatty output");
///   Status s = flags.Parse(argc, argv);
class FlagParser {
 public:
  void AddInt64(const std::string& name, int64_t* target, std::string help);
  void AddUint64(const std::string& name, uint64_t* target, std::string help);
  void AddDouble(const std::string& name, double* target, std::string help);
  void AddBool(const std::string& name, bool* target, std::string help);
  void AddString(const std::string& name, std::string* target, std::string help);

  /// Parses argv; fills registered targets. Returns InvalidArgument on
  /// unknown flags or malformed values.
  Status Parse(int argc, char** argv);

  /// Arguments that were not flags, in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders a usage block listing every registered flag with its default.
  std::string Usage(const std::string& program_name) const;

 private:
  enum class Type { kInt64, kUint64, kDouble, kBool, kString };

  struct FlagInfo {
    Type type;
    void* target;
    std::string help;
    std::string default_repr;
  };

  Status SetValue(const std::string& name, FlagInfo* info, const std::string& value);

  std::map<std::string, FlagInfo> flags_;
  std::vector<std::string> positional_;
};

}  // namespace sprofile

#endif  // SPROFILE_UTIL_FLAGS_H_
