// CRC32C (Castagnoli) checksum, table-driven (software) implementation.
//
// Used by the stream IO format to detect corruption in persisted log
// streams, mirroring how RocksDB checksums its blocks.

#ifndef SPROFILE_UTIL_CRC32C_H_
#define SPROFILE_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace sprofile {
namespace crc32c {

/// Extends a running CRC32C with `n` bytes at `data`. Start with crc = 0.
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// One-shot CRC32C of a buffer.
inline uint32_t Value(const void* data, size_t n) { return Extend(0, data, n); }

/// Masked CRC (same motivation as RocksDB/LevelDB: storing a CRC of data
/// that itself contains CRCs is error-prone, so stored values are masked).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace sprofile

#endif  // SPROFILE_UTIL_CRC32C_H_
