// Deterministic, seedable random number generation.
//
// Two generators are provided:
//  - SplitMix64: tiny state, used for seeding and hashing.
//  - Xoshiro256PlusPlus: the workhorse generator for workload synthesis;
//    satisfies the UniformRandomBitGenerator concept so it plugs into
//    <random> distributions when convenient.
//
// All experiment workloads in this repository are generated from explicit
// seeds so that every reported number is reproducible (the paper's streams
// were random without published seeds; see DESIGN.md substitution table).

#ifndef SPROFILE_UTIL_RANDOM_H_
#define SPROFILE_UTIL_RANDOM_H_

#include <cstdint>
#include <limits>

namespace sprofile {

/// SplitMix64 step (Steele, Lea, Flood 2014). Used to expand one 64-bit seed
/// into generator state and as a cheap integer mixer.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Mixes a 64-bit value once (stateless convenience for hashing).
inline uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(&s);
}

/// xoshiro256++ 1.0 (Blackman & Vigna 2019): fast, 256-bit state, passes
/// BigCrush. Not cryptographic; intended for workload generation.
class Xoshiro256PlusPlus {
 public:
  using result_type = uint64_t;

  /// Seeds the 256-bit state from a single 64-bit seed via SplitMix64,
  /// as recommended by the xoshiro authors.
  explicit Xoshiro256PlusPlus(uint64_t seed = 0x5eedu) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(&sm);
  }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1) with 53 random bits.
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Standard normal variate (Marsaglia polar method; caches the pair).
  double NextGaussian();

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return std::numeric_limits<uint64_t>::max(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace sprofile

#endif  // SPROFILE_UTIL_RANDOM_H_
