// Clang Thread Safety Analysis attribute macros (SPROFILE_ prefix).
//
// These turn the repo's locking discipline into a compile-time proof: a
// field declared SPROFILE_GUARDED_BY(mu_) cannot be touched without mu_
// held, a function declared SPROFILE_REQUIRES(mu_) cannot be called
// without it, and clang rejects violations outright because CMake builds
// every clang configuration with -Wthread-safety -Werror=thread-safety
// (see cmake/ThreadSafety.cmake, which also proves the analysis is live
// with a negative-compile probe). On gcc and MSVC every macro expands to
// nothing — the annotations are documentation there, and the dynamic
// TSan/ASan CI legs remain the cross-compiler backstop.
//
// The vocabulary is the standard clang set
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), the same macro
// shapes abseil and LLVM ship. Use the sprofile::Mutex / MutexLock /
// CondVar wrappers from util/sync.h rather than annotating std::mutex
// directly — std:: types cannot carry capability attributes.

#ifndef SPROFILE_UTIL_THREAD_ANNOTATIONS_H_
#define SPROFILE_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SPROFILE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SPROFILE_THREAD_ANNOTATION
#define SPROFILE_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a type to be a lockable capability ("mutex" names it in
/// diagnostics).
#define SPROFILE_CAPABILITY(x) SPROFILE_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define SPROFILE_SCOPED_CAPABILITY SPROFILE_THREAD_ANNOTATION(scoped_lockable)

/// The annotated field may only be read or written while `x` is held.
#define SPROFILE_GUARDED_BY(x) SPROFILE_THREAD_ANNOTATION(guarded_by(x))

/// The data POINTED TO by the annotated pointer/smart-pointer field may
/// only be dereferenced while `x` is held (the pointer itself is free).
#define SPROFILE_PT_GUARDED_BY(x) SPROFILE_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function acquires the listed capabilities and does not release
/// them before returning.
#define SPROFILE_ACQUIRE(...) \
  SPROFILE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SPROFILE_ACQUIRE_SHARED(...) \
  SPROFILE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// The function releases the listed capabilities (they must be held on
/// entry).
#define SPROFILE_RELEASE(...) \
  SPROFILE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SPROFILE_RELEASE_SHARED(...) \
  SPROFILE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `val`.
#define SPROFILE_TRY_ACQUIRE(val, ...) \
  SPROFILE_THREAD_ANNOTATION(try_acquire_capability(val, __VA_ARGS__))

/// The caller must hold the listed capabilities (exclusively) to call the
/// function; the function neither acquires nor releases them. This is the
/// contract of every *Locked helper.
#define SPROFILE_REQUIRES(...) \
  SPROFILE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SPROFILE_REQUIRES_SHARED(...) \
  SPROFILE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities (the function takes
/// them itself; calling with one held would deadlock a non-recursive
/// mutex).
#define SPROFILE_EXCLUDES(...) \
  SPROFILE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code paths the
/// static analysis cannot follow).
#define SPROFILE_ASSERT_CAPABILITY(x) \
  SPROFILE_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the named capability.
#define SPROFILE_RETURN_CAPABILITY(x) \
  SPROFILE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function body is exempt from analysis. Every use
/// must carry a comment proving the manual reasoning.
#define SPROFILE_NO_THREAD_SAFETY_ANALYSIS \
  SPROFILE_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SPROFILE_UTIL_THREAD_ANNOTATIONS_H_
