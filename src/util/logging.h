// Lightweight check/assert macros used across the library.
//
// SPROFILE_CHECK(cond)   - always-on invariant check; aborts with location info.
// SPROFILE_DCHECK(cond)  - debug-only check; compiles out in NDEBUG builds so the
//                          O(1) hot path stays branch-free in release mode.
//
// Following the RocksDB/Arrow convention, these are for programmer errors
// (precondition violations); recoverable conditions use util::Status instead.

#ifndef SPROFILE_UTIL_LOGGING_H_
#define SPROFILE_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define SPROFILE_CHECK(cond)                                                      \
  do {                                                                            \
    if (!(cond)) {                                                                \
      std::fprintf(stderr, "[sprofile] CHECK failed: %s at %s:%d\n", #cond,       \
                   __FILE__, __LINE__);                                           \
      std::abort();                                                               \
    }                                                                             \
  } while (0)

#define SPROFILE_CHECK_MSG(cond, msg)                                             \
  do {                                                                            \
    if (!(cond)) {                                                                \
      std::fprintf(stderr, "[sprofile] CHECK failed: %s (%s) at %s:%d\n", #cond,  \
                   msg, __FILE__, __LINE__);                                      \
      std::abort();                                                               \
    }                                                                             \
  } while (0)

#ifdef NDEBUG
#define SPROFILE_DCHECK(cond) \
  do {                        \
  } while (0)
#else
#define SPROFILE_DCHECK(cond) SPROFILE_CHECK(cond)
#endif

#endif  // SPROFILE_UTIL_LOGGING_H_
