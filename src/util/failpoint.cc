#include "util/failpoint.h"

#include "sprofile/obs/metrics.h"
#include "sprofile/obs/trace_ring.h"

namespace sprofile {
namespace failpoint {

namespace {

// splitmix64: tiny, seedable, and good enough for per-hit coin flips.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void Point::Activate(const Trigger& trigger) {
  MutexLock lock(mu_);
  trigger_ = trigger;
  hits_since_arm_ = 0;
  rng_state_ = trigger.seed;
  // orders: relaxed — the mutex above already orders the trigger state
  // against any ShouldFireSlow that observes armed_ == true.
  armed_.store(true, std::memory_order_relaxed);
}

void Point::Deactivate() {
  MutexLock lock(mu_);
  // orders: relaxed — see Activate.
  armed_.store(false, std::memory_order_relaxed);
}

bool Point::ShouldFireSlow() {
  bool fire = false;
  {
    MutexLock lock(mu_);
    // Re-check under the lock: a Deactivate may have won the race since
    // the fast-path load.
    // orders: relaxed — mu_ orders the trigger state.
    if (!armed_.load(std::memory_order_relaxed)) return false;
    const uint64_t hit = ++hits_since_arm_;
    switch (trigger_.mode) {
      case Trigger::Mode::kAlways:
        fire = true;
        break;
      case Trigger::Mode::kOnce:
        fire = true;
        // orders: relaxed — self-disarm under mu_, same contract as
        // Deactivate.
        armed_.store(false, std::memory_order_relaxed);
        break;
      case Trigger::Mode::kEveryNth:
        fire = (hit % trigger_.n) == 0;
        break;
      case Trigger::Mode::kProbability: {
        // Map the top 53 bits to [0, 1): an exact-1.0 trigger always
        // fires, an exact-0.0 one never does.
        const double u =
            static_cast<double>(NextRandom(&rng_state_) >> 11) * 0x1p-53;
        fire = u < trigger_.probability;
        break;
      }
      case Trigger::Mode::kAfterNHits:
        fire = hit > trigger_.n;
        break;
    }
  }
  // orders: relaxed — advisory counters.
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (fire) {
    const uint64_t fired = fires_.fetch_add(1, std::memory_order_relaxed) + 1;
    SPROFILE_METRIC_COUNTER("sprofile_failpoint_fires", "fires",
                            "Armed failpoints that injected a failure")
        .Add(1);
    obs::Trace(obs::TraceEvent::kFailpoint, index_, fired);
  }
  return fire;
}

Registry& Registry::Global() {
  // Never destroyed: macro sites may fire from static destructors and
  // cache Point references for the process lifetime (the same contract
  // as obs::Registry::Global()).
  static Registry* g = new Registry();
  return *g;
}

Point& Registry::GetOrCreate(std::string_view name) {
  MutexLock lock(mu_);
  for (Point* p : points_) {
    if (p->name() == name) return *p;
  }
  points_.push_back(
      new Point(std::string(name), static_cast<uint32_t>(points_.size())));
  return *points_.back();
}

bool Registry::Deactivate(std::string_view name) {
  MutexLock lock(mu_);
  for (Point* p : points_) {
    if (p->name() == name) {
      p->Deactivate();
      return true;
    }
  }
  return false;
}

void Registry::DeactivateAll() {
  MutexLock lock(mu_);
  for (Point* p : points_) p->Deactivate();
}

uint64_t Registry::FireCount(std::string_view name) const {
  MutexLock lock(mu_);
  for (const Point* p : points_) {
    if (p->name() == name) return p->fire_count();
  }
  return 0;
}

std::vector<std::string> Registry::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const Point* p : points_) out.push_back(p->name());
  return out;
}

}  // namespace failpoint
}  // namespace sprofile
