// Capability-annotated synchronization primitives: thin wrappers over
// std::mutex / std::condition_variable that clang's Thread Safety
// Analysis can see (util/thread_annotations.h). Zero-overhead by
// construction — every method is a single forwarded call — and exactly
// as portable as the std types underneath; only the attributes are
// clang-conditional.
//
// Usage pattern (the whole repo follows it):
//
//   class Widget {
//     void Grow() {
//       MutexLock lock(mu_);
//       while (busy_) cv_.Wait(mu_);   // loop, not a predicate lambda:
//       ++size_;                       // lambdas escape the analysis
//     }
//     Mutex mu_;
//     CondVar cv_;
//     bool busy_ SPROFILE_GUARDED_BY(mu_) = false;
//     int size_ SPROFILE_GUARDED_BY(mu_) = 0;
//   };
//
// CondVar deliberately has NO predicate-taking Wait overload: the
// analysis cannot see through a lambda body, so a predicate reading a
// guarded field inside `cv.wait(lock, pred)` would either warn or force
// a blanket NO_THREAD_SAFETY_ANALYSIS. A plain while-loop around Wait()
// keeps the guarded reads inside the annotated caller where the proof
// works. (The loop is also the posix-correct spurious-wakeup shape.)

#ifndef SPROFILE_UTIL_SYNC_H_
#define SPROFILE_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace sprofile {

/// A std::mutex the thread-safety analysis can track. Non-recursive,
/// non-reentrant, same cost as the std type.
class SPROFILE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SPROFILE_ACQUIRE() { mu_.lock(); }
  void Unlock() SPROFILE_RELEASE() { mu_.unlock(); }
  bool TryLock() SPROFILE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock (std::lock_guard shape). The analysis treats the guard's
/// lifetime as the region where the mutex is held.
class SPROFILE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SPROFILE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SPROFILE_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to sprofile::Mutex. All concurrent waiters
/// of one CondVar must wait on the SAME Mutex (the std contract).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning. Spurious wakeups happen: always call in a loop that
  /// re-checks the guarded condition.
  void Wait(Mutex& mu) SPROFILE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the mutex
  }

  /// Wait() with a timeout; returns false on timeout (with `mu` held
  /// either way).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      SPROFILE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status st = cv_.wait_for(lock, timeout);
    lock.release();
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sprofile

#endif  // SPROFILE_UTIL_SYNC_H_
