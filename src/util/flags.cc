#include "util/flags.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace sprofile {

namespace {

std::string BoolRepr(bool b) { return b ? "true" : "false"; }

}  // namespace

void FlagParser::AddInt64(const std::string& name, int64_t* target, std::string help) {
  flags_[name] = FlagInfo{Type::kInt64, target, std::move(help), std::to_string(*target)};
}

void FlagParser::AddUint64(const std::string& name, uint64_t* target,
                           std::string help) {
  flags_[name] =
      FlagInfo{Type::kUint64, target, std::move(help), std::to_string(*target)};
}

void FlagParser::AddDouble(const std::string& name, double* target, std::string help) {
  flags_[name] =
      FlagInfo{Type::kDouble, target, std::move(help), std::to_string(*target)};
}

void FlagParser::AddBool(const std::string& name, bool* target, std::string help) {
  flags_[name] = FlagInfo{Type::kBool, target, std::move(help), BoolRepr(*target)};
}

void FlagParser::AddString(const std::string& name, std::string* target,
                           std::string help) {
  flags_[name] = FlagInfo{Type::kString, target, std::move(help), *target};
}

Status FlagParser::SetValue(const std::string& name, FlagInfo* info,
                            const std::string& value) {
  errno = 0;
  char* end = nullptr;
  switch (info->type) {
    case Type::kInt64: {
      long long v = std::strtoll(value.c_str(), &end, 10);
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name + ": bad integer '" + value +
                                       "'");
      }
      *static_cast<int64_t*>(info->target) = v;
      return Status::OK();
    }
    case Type::kUint64: {
      if (!value.empty() && value[0] == '-') {
        return Status::InvalidArgument("flag --" + name + ": negative value '" + value +
                                       "' for unsigned flag");
      }
      unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name + ": bad integer '" + value +
                                       "'");
      }
      *static_cast<uint64_t*>(info->target) = v;
      return Status::OK();
    }
    case Type::kDouble: {
      double v = std::strtod(value.c_str(), &end);
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name + ": bad number '" + value +
                                       "'");
      }
      *static_cast<double*>(info->target) = v;
      return Status::OK();
    }
    case Type::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(info->target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(info->target) = false;
      } else {
        return Status::InvalidArgument("flag --" + name + ": bad bool '" + value + "'");
      }
      return Status::OK();
    }
    case Type::kString:
      *static_cast<std::string*>(info->target) = value;
      return Status::OK();
  }
  return Status::InvalidArgument("flag --" + name + ": unknown type");
}

Status FlagParser::Parse(int argc, char** argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name, value;
    bool has_value = false;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }

    auto it = flags_.find(name);
    if (it == flags_.end()) {
      // `--no-foo` negates a registered boolean `foo`.
      if (name.rfind("no-", 0) == 0) {
        auto neg = flags_.find(name.substr(3));
        if (neg != flags_.end() && neg->second.type == Type::kBool && !has_value) {
          *static_cast<bool*>(neg->second.target) = false;
          continue;
        }
      }
      return Status::InvalidArgument("unknown flag --" + name);
    }

    FlagInfo& info = it->second;
    if (!has_value) {
      if (info.type == Type::kBool) {
        *static_cast<bool*>(info.target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name + " expects a value");
      }
      value = argv[++i];
    }
    SPROFILE_RETURN_NOT_OK(SetValue(name, &info, value));
  }
  return Status::OK();
}

std::string FlagParser::Usage(const std::string& program_name) const {
  std::ostringstream out;
  out << "Usage: " << program_name << " [flags]\n";
  for (const auto& [name, info] : flags_) {
    out << "  --" << name << " (default " << info.default_repr << ")\n      "
        << info.help << "\n";
  }
  return out.str();
}

}  // namespace sprofile
