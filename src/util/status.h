// Status / Result error-handling primitives, modelled on the idiom shared by
// RocksDB (`rocksdb::Status`) and Arrow (`arrow::Status` / `arrow::Result<T>`).
//
// Hot-path operations in the core library (Add/Remove) do NOT return Status:
// they are the O(1) claim of the paper and take debug asserts instead.
// Everything fallible at the edges (IO, configuration validation, keyed
// insertion at capacity) reports through these types.

#ifndef SPROFILE_UTIL_STATUS_H_
#define SPROFILE_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/logging.h"

namespace sprofile {

/// Error category carried by a non-OK Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kCapacityExhausted = 5,
  kIOError = 6,
  kCorruption = 7,
  kFailedPrecondition = 8,
  kUnimplemented = 9,
  kUnavailable = 10,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// The OK state carries no allocation; error states carry a code and a
/// message. Use the factory functions (`Status::InvalidArgument(...)`) rather
/// than the constructor.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status CapacityExhausted(std::string msg) {
    return Status(StatusCode::kCapacityExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  /// Transient overload / degraded-mode rejection: the operation may
  /// succeed if retried later (shed events under OverloadPolicy::kShed,
  /// queries against a quarantined shard). RocksDB's TryAgain family.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// Builds a non-OK status with an explicit code — for layers that annotate
  /// an inner error's message while preserving its code. `code` must not be
  /// kOk (an OK status carries no message).
  static Status FromCode(StatusCode code, std::string msg) {
    SPROFILE_CHECK_MSG(code != StatusCode::kOk,
                       "FromCode requires a non-OK code");
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "InvalidArgument: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg) : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-Status, modelled on arrow::Result<T>.
///
/// Accessing the value of an errored Result is a checked programmer error.
///
/// gcc 12 (and only gcc) emits a -Wmaybe-uninitialized false positive when
/// the implicit ~Result() is inlined at -O2: the variant destructor's
/// dead no-value branch reads the Status alternative's string members
/// "uninitialized" (GCC PR105593 family — std::variant's valueless branch
/// confuses the uninit pass). Suppress exactly that diagnostic exactly
/// here; the pragma region covers the implicit special members the
/// compiler attributes to the class's closing brace.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status (failure). Constructing from an OK status
  /// is a programmer error (there would be no value to carry).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT(runtime/explicit)
    SPROFILE_CHECK_MSG(!std::get<Status>(payload_).ok(),
                       "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  /// Returns the contained value; the Result must be ok().
  const T& value() const& {
    SPROFILE_CHECK_MSG(ok(), "value() on errored Result");
    return std::get<T>(payload_);
  }
  T& value() & {
    SPROFILE_CHECK_MSG(ok(), "value() on errored Result");
    return std::get<T>(payload_);
  }
  T&& value() && {
    SPROFILE_CHECK_MSG(ok(), "value() on errored Result");
    return std::get<T>(std::move(payload_));
  }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    if (ok()) return std::get<T>(payload_);
    return fallback;
  }

  /// Pointer-style accessors (absl::StatusOr idiom); same checked
  /// precondition as value().
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

/// The facade spelling of Result<T>, matching the absl/protobuf name the
/// checked `sprofile::` API tier documents. One type, two names: Result<T>
/// stays for the existing core/IO call sites.
template <typename T>
using StatusOr = Result<T>;

/// Propagates a non-OK Status from an expression (RocksDB's `s.ok()` ladder,
/// Arrow's ARROW_RETURN_NOT_OK).
#define SPROFILE_RETURN_NOT_OK(expr)              \
  do {                                            \
    ::sprofile::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define SPROFILE_STATUS_CONCAT_IMPL(a, b) a##b
#define SPROFILE_STATUS_CONCAT(a, b) SPROFILE_STATUS_CONCAT_IMPL(a, b)

/// Unwraps a StatusOr expression into `lhs` or propagates its error
/// (Arrow's ARROW_ASSIGN_OR_RAISE / absl's ASSIGN_OR_RETURN).
#define SPROFILE_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  auto SPROFILE_STATUS_CONCAT(_sprofile_statusor_, __LINE__) = (rexpr);  \
  if (!SPROFILE_STATUS_CONCAT(_sprofile_statusor_, __LINE__).ok())       \
    return SPROFILE_STATUS_CONCAT(_sprofile_statusor_, __LINE__).status(); \
  lhs = std::move(SPROFILE_STATUS_CONCAT(_sprofile_statusor_, __LINE__)).value()

}  // namespace sprofile

#endif  // SPROFILE_UTIL_STATUS_H_
