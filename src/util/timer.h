// Wall-clock timing for the benchmark harnesses.

#ifndef SPROFILE_UTIL_TIMER_H_
#define SPROFILE_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace sprofile {

/// Monotonic stopwatch. Construction starts the clock.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sprofile

#endif  // SPROFILE_UTIL_TIMER_H_
