// Fixed-width ASCII table rendering for benchmark output.
//
// The figure-reproduction binaries print the same series the paper plots;
// this helper keeps columns aligned so the output reads like the paper's
// tables (and stays grep-/awk-friendly for downstream plotting).

#ifndef SPROFILE_UTIL_TABLE_H_
#define SPROFILE_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sprofile {

/// Column-aligned table builder.
///
///   TablePrinter t({"n", "heap (s)", "sprofile (s)", "speedup"});
///   t.AddRow({"1e6", "0.41", "0.17", "2.4x"});
///   std::cout << t.ToString();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each double with %.4g.
  void AddNumericRow(const std::vector<double>& cells);

  /// Renders the table with a separator line under the header.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a count with engineering suffixes: 1500000 -> "1.5e6"-style
/// compact rendering used in series labels.
std::string HumanCount(uint64_t v);

/// Formats seconds adaptively ("123 ms", "4.56 s").
std::string HumanSeconds(double seconds);

}  // namespace sprofile

#endif  // SPROFILE_UTIL_TABLE_H_
