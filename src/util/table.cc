#include "util/table.h"

#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace sprofile {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SPROFILE_CHECK_MSG(cells.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddNumericRow(const std::vector<double>& cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  char buf[64];
  for (double v : cells) {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    row.emplace_back(buf);
  }
  AddRow(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };

  emit_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "" : "  ") << std::string(widths[c], '-');
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string HumanCount(uint64_t v) {
  char buf[64];
  if (v >= 1000000000ULL && v % 100000000ULL == 0) {
    std::snprintf(buf, sizeof(buf), "%.1fe9", static_cast<double>(v) / 1e9);
  } else if (v >= 1000000ULL && v % 100000ULL == 0) {
    std::snprintf(buf, sizeof(buf), "%.1fe6", static_cast<double>(v) / 1e6);
  } else if (v >= 1000ULL && v % 100ULL == 0) {
    std::snprintf(buf, sizeof(buf), "%.1fe3", static_cast<double>(v) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  }
  return buf;
}

std::string HumanSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

}  // namespace sprofile
