// Misra–Gries frequent-elements summary.
//
// The paper's related work (§1) contrasts exact profiling with
// space-efficient approximate frequency counting. Misra–Gries keeps k-1
// counters and guarantees every estimate is within n/k of the true count
// (n = stream length). Insertion-only — it is the classic comparator for
// top-K on add-only streams, and the sketch bench (A5) measures what the
// approximation buys and costs relative to exact S-Profile.

#ifndef SPROFILE_SKETCH_MISRA_GRIES_H_
#define SPROFILE_SKETCH_MISRA_GRIES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/robin_hood_map.h"
#include "util/logging.h"

namespace sprofile {
namespace sketch {

class MisraGries {
 public:
  /// `num_counters` = k-1 in the classic formulation; error <= n / (k).
  explicit MisraGries(uint32_t num_counters) : capacity_(num_counters) {
    SPROFILE_CHECK(num_counters > 0);
    counters_.Reserve(num_counters * 2);
  }

  /// Processes one arrival of `id`. O(1) amortized.
  void Add(uint64_t id) {
    ++stream_length_;
    uint64_t* c = counters_.Find(id);
    if (c != nullptr) {
      *c += 1;
      return;
    }
    if (counters_.size() < capacity_) {
      counters_.Insert(id, 1);
      return;
    }
    // Decrement-all step: every counter loses one; zeros are evicted.
    std::vector<uint64_t> dead;
    counters_.ForEach([&](const uint64_t& key, const uint64_t& count) {
      if (count == 1) dead.push_back(key);
    });
    // Two passes because ForEach must not observe concurrent mutation.
    std::vector<std::pair<uint64_t, uint64_t>> alive;
    counters_.ForEach([&](const uint64_t& key, const uint64_t& count) {
      if (count > 1) alive.emplace_back(key, count - 1);
    });
    for (uint64_t key : dead) counters_.Erase(key);
    for (const auto& [key, count] : alive) counters_.Upsert(key, count);
  }

  /// Lower-bound estimate of id's frequency (0 when untracked).
  /// True frequency is in [Estimate, Estimate + MaxError].
  uint64_t Estimate(uint64_t id) const {
    const uint64_t* c = counters_.Find(id);
    return c == nullptr ? 0 : *c;
  }

  /// Worst-case undercount: n / (k+1) rounded up, by the MG analysis.
  uint64_t MaxError() const { return stream_length_ / (capacity_ + 1); }

  /// All tracked (id, estimate) pairs, descending by estimate.
  std::vector<std::pair<uint64_t, uint64_t>> HeavyHitters() const;

  uint64_t stream_length() const { return stream_length_; }
  size_t num_tracked() const { return counters_.size(); }

 private:
  uint32_t capacity_;
  uint64_t stream_length_ = 0;
  RobinHoodMap<uint64_t, uint64_t> counters_;
};

}  // namespace sketch
}  // namespace sprofile

#endif  // SPROFILE_SKETCH_MISRA_GRIES_H_
