// Greenwald–Khanna ε-approximate quantile summary (SIGMOD 2001) — the
// algorithm behind the sliding-window quantile work in the paper's
// related-work list ([1] Arasu & Manku, [11] Lin et al.).
//
// Maintains O((1/ε) log(εn)) tuples (v, g, Δ) such that any φ-quantile
// query is answered within ±εn rank error. Insertion is O(summary size)
// in this straightforward implementation (compress on a period), which is
// entirely adequate as a comparator: the point of the related work is
// the memory/accuracy trade, not raw speed.
//
// Contrast with S-Profile: the profile answers *exact* quantiles of the
// frequency array in O(1) using O(m) space; GK answers approximate
// quantiles of an arbitrary value stream in sublinear space. The quantile
// bench puts numbers on that trade.

#ifndef SPROFILE_SKETCH_GK_QUANTILES_H_
#define SPROFILE_SKETCH_GK_QUANTILES_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace sprofile {
namespace sketch {

class GkQuantileSummary {
 public:
  /// `epsilon` in (0, 0.5]: rank error bound as a fraction of n.
  explicit GkQuantileSummary(double epsilon) : epsilon_(epsilon) {
    SPROFILE_CHECK_MSG(epsilon > 0.0 && epsilon <= 0.5, "epsilon in (0, 0.5]");
  }

  /// Inserts one observation. Amortized O(summary size).
  void Add(int64_t value);

  /// Value whose rank is within epsilon*n of ceil(phi*n), phi in [0, 1].
  /// Requires a nonempty summary.
  int64_t Quantile(double phi) const;

  /// Convenience accessors.
  int64_t Median() const { return Quantile(0.5); }

  uint64_t stream_length() const { return count_; }

  /// Tuples currently held — the memory footprint.
  size_t summary_size() const { return tuples_.size(); }

  /// GK invariant: g + Δ <= 2εn for every tuple (except while the first
  /// 1/(2ε) observations trickle in). Exposed for tests.
  bool CheckInvariant() const;

 private:
  struct Tuple {
    int64_t value;
    uint64_t g;      // rank_min(this) - rank_min(prev)
    uint64_t delta;  // rank_max(this) - rank_min(this)
  };

  void Compress();

  double epsilon_;
  uint64_t count_ = 0;
  std::vector<Tuple> tuples_;  // sorted by value
};

}  // namespace sketch
}  // namespace sprofile

#endif  // SPROFILE_SKETCH_GK_QUANTILES_H_
