// Boyer–Moore majority vote (MJRTY, 1981/1991) — reference [3] of the
// paper: O(n) time, O(1) space detection of an element holding more than
// half the stream.
//
// The vote maintains a candidate and a counter; a genuine majority always
// survives as the candidate, but a candidate is only a *claim* — callers
// must verify its count (the classic second pass; here one O(1) lookup in
// a FrequencyProfile, which is the contrast the paper draws: the profile
// answers majority — and everything else — exactly, at all times).

#ifndef SPROFILE_SKETCH_BOYER_MOORE_H_
#define SPROFILE_SKETCH_BOYER_MOORE_H_

#include <cstdint>

namespace sprofile {
namespace sketch {

class BoyerMooreMajority {
 public:
  /// Feeds one element. O(1).
  void Add(uint64_t value) {
    ++stream_length_;
    if (count_ == 0) {
      candidate_ = value;
      count_ = 1;
    } else if (candidate_ == value) {
      ++count_;
    } else {
      --count_;
    }
  }

  /// The surviving candidate. Only meaningful when a majority exists
  /// (verify externally); undefined content on an empty stream.
  uint64_t candidate() const { return candidate_; }

  /// True when at least one element has been fed.
  bool has_candidate() const { return stream_length_ > 0; }

  /// Residual vote margin (diagnostics; NOT the candidate's frequency).
  uint64_t margin() const { return count_; }

  uint64_t stream_length() const { return stream_length_; }

  void Reset() {
    candidate_ = 0;
    count_ = 0;
    stream_length_ = 0;
  }

 private:
  uint64_t candidate_ = 0;
  uint64_t count_ = 0;
  uint64_t stream_length_ = 0;
};

}  // namespace sketch
}  // namespace sprofile

#endif  // SPROFILE_SKETCH_BOYER_MOORE_H_
