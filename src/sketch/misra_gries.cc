#include "sketch/misra_gries.h"

#include <algorithm>

namespace sprofile {
namespace sketch {

std::vector<std::pair<uint64_t, uint64_t>> MisraGries::HeavyHitters() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(counters_.size());
  counters_.ForEach([&](const uint64_t& key, const uint64_t& count) {
    out.emplace_back(key, count);
  });
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace sketch
}  // namespace sprofile
