#include "sketch/gk_quantiles.h"

#include <algorithm>
#include <cmath>

namespace sprofile {
namespace sketch {

void GkQuantileSummary::Add(int64_t value) {
  // Locate the insertion position (first tuple with larger value).
  auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), value,
      [](int64_t v, const Tuple& t) { return v < t.value; });

  uint64_t delta;
  if (it == tuples_.begin() || it == tuples_.end()) {
    // New minimum or maximum: its rank is known exactly.
    delta = 0;
  } else {
    delta = static_cast<uint64_t>(
        std::max<double>(std::floor(2.0 * epsilon_ * static_cast<double>(count_)) - 1.0, 0.0));
  }
  tuples_.insert(it, Tuple{value, 1, delta});
  ++count_;

  // Periodic compression keeps the summary at O((1/eps) log(eps n)).
  const uint64_t period =
      std::max<uint64_t>(1, static_cast<uint64_t>(1.0 / (2.0 * epsilon_)));
  if (count_ % period == 0) Compress();
}

// gcc 12 (and only gcc) at -O3 emits a -Wfree-nonheap-object false
// positive here: vector<Tuple>'s reallocation is inlined until the
// optimizer loses track of the pointer's provenance and claims operator
// delete runs on an offset pointer (GCC PR104069 family — std::vector
// inlining confuses the free-nonheap pass; no offset delete exists in
// this function). Suppress exactly that diagnostic exactly here, per the
// -Werror policy in CMakeLists.txt.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
#endif
void GkQuantileSummary::Compress() {
  if (tuples_.size() < 3) return;
  const double threshold = 2.0 * epsilon_ * static_cast<double>(count_);
  // Merge right-to-left: tuple i folds into i+1 when their combined
  // uncertainty stays under the 2εn band. First and last tuples (exact
  // min/max) are never merged away.
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  out.push_back(tuples_.front());
  // Work over the interior, accumulating g into the successor when safe.
  for (size_t i = 1; i < tuples_.size(); ++i) {
    Tuple current = tuples_[i];
    while (i + 1 < tuples_.size()) {
      const Tuple& next = tuples_[i + 1];
      if (static_cast<double>(current.g + next.g + next.delta) <= threshold) {
        // Fold current into next.
        Tuple merged = next;
        merged.g += current.g;
        current = merged;
        ++i;
      } else {
        break;
      }
    }
    out.push_back(current);
  }
  tuples_ = std::move(out);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

int64_t GkQuantileSummary::Quantile(double phi) const {
  SPROFILE_CHECK_MSG(!tuples_.empty(), "quantile of an empty summary");
  // The extreme tuples are never merged away, so min and max are exact.
  if (phi <= 0.0) return tuples_.front().value;
  if (phi >= 1.0) return tuples_.back().value;
  const double target = phi * static_cast<double>(count_);
  const double slack = epsilon_ * static_cast<double>(count_);

  uint64_t rank_min = 0;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    rank_min += tuples_[i].g;
    const uint64_t rank_max = rank_min + tuples_[i].delta;
    if (static_cast<double>(rank_max) >= target - slack &&
        static_cast<double>(rank_min) <= target + slack) {
      return tuples_[i].value;
    }
    if (static_cast<double>(rank_min) > target + slack) {
      // Overshot (can happen transiently for tiny summaries): previous
      // tuple was the best answer.
      return tuples_[i > 0 ? i - 1 : 0].value;
    }
  }
  return tuples_.back().value;
}

bool GkQuantileSummary::CheckInvariant() const {
  const double band = 2.0 * epsilon_ * static_cast<double>(count_);
  for (size_t i = 1; i < tuples_.size(); ++i) {
    if (tuples_[i].value < tuples_[i - 1].value) return false;  // sorted
    // The g + delta band; +1 slack covers the freshly-inserted tuple
    // before its first compression.
    if (static_cast<double>(tuples_[i].g + tuples_[i].delta) > band + 1.0) {
      return false;
    }
  }
  return true;
}

}  // namespace sketch
}  // namespace sprofile
