// Space-Saving (Metwally, Agrawal, El Abbadi 2005) heavy hitters.
//
// Keeps exactly k counters; on overflow the minimum counter is *reassigned*
// to the new element with count min+1 and the displacement recorded as that
// element's potential error. Estimates are upper bounds:
//   true <= Estimate <= true + MaxError(id).
// Insertion-only, like Misra–Gries. Uses S-Profile's own block-set idea in
// miniature: counters move by ±1, so the "stream summary" bucket list gives
// O(1) updates — which is why this sketch pairs naturally with the paper.

#ifndef SPROFILE_SKETCH_SPACE_SAVING_H_
#define SPROFILE_SKETCH_SPACE_SAVING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/frequency_profile.h"
#include "core/robin_hood_map.h"
#include "util/logging.h"

namespace sprofile {
namespace sketch {

class SpaceSaving {
 public:
  explicit SpaceSaving(uint32_t num_counters)
      : capacity_(num_counters), profile_(num_counters) {
    SPROFILE_CHECK(num_counters > 0);
    slot_key_.resize(num_counters, 0);
    slot_error_.resize(num_counters, 0);
    slot_used_.resize(num_counters, false);
    key_to_slot_.Reserve(num_counters * 2);
  }

  /// Processes one arrival of `key`. O(1) amortized: the counter array is
  /// itself maintained by a FrequencyProfile, so finding and bumping the
  /// minimum counter is O(1) — the paper's structure applied to its own
  /// related work.
  void Add(uint64_t key) {
    ++stream_length_;
    uint32_t* slot = key_to_slot_.Find(key);
    if (slot != nullptr) {
      profile_.Add(*slot);
      return;
    }
    if (used_ < capacity_) {
      const uint32_t s = used_++;
      slot_key_[s] = key;
      slot_error_[s] = 0;
      slot_used_[s] = true;
      key_to_slot_.Insert(key, s);
      profile_.Add(s);
      return;
    }
    // Evict a minimum-count slot: its count becomes the new key's error.
    const GroupView min_group = profile_.MinFrequent();
    const uint32_t s = min_group[0];
    key_to_slot_.Erase(slot_key_[s]);
    slot_key_[s] = key;
    slot_error_[s] = min_group.frequency;
    key_to_slot_.Insert(key, s);
    profile_.Add(s);
  }

  /// Upper-bound estimate (0 when untracked).
  uint64_t Estimate(uint64_t key) const {
    const uint32_t* slot = key_to_slot_.Find(key);
    if (slot == nullptr) return 0;
    return static_cast<uint64_t>(profile_.Frequency(*slot));
  }

  /// Per-key maximum overcount (the evicted count absorbed at takeover).
  uint64_t ErrorBound(uint64_t key) const {
    const uint32_t* slot = key_to_slot_.Find(key);
    if (slot == nullptr) return 0;
    return static_cast<uint64_t>(slot_error_[*slot]);
  }

  /// All tracked (key, estimate) pairs, descending by estimate.
  std::vector<std::pair<uint64_t, uint64_t>> HeavyHitters() const;

  uint64_t stream_length() const { return stream_length_; }
  size_t num_tracked() const { return used_; }

 private:
  uint32_t capacity_;
  uint32_t used_ = 0;
  uint64_t stream_length_ = 0;
  FrequencyProfile profile_;            // counter multiset, O(1) min + bump
  std::vector<uint64_t> slot_key_;      // slot -> current key
  std::vector<int64_t> slot_error_;     // slot -> absorbed error
  std::vector<bool> slot_used_;
  RobinHoodMap<uint64_t, uint32_t> key_to_slot_;
};

}  // namespace sketch
}  // namespace sprofile

#endif  // SPROFILE_SKETCH_SPACE_SAVING_H_
