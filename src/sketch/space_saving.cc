#include "sketch/space_saving.h"

#include <algorithm>

namespace sprofile {
namespace sketch {

std::vector<std::pair<uint64_t, uint64_t>> SpaceSaving::HeavyHitters() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(used_);
  for (uint32_t s = 0; s < used_; ++s) {
    if (!slot_used_[s]) continue;
    out.emplace_back(slot_key_[s], static_cast<uint64_t>(profile_.Frequency(s)));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace sketch
}  // namespace sprofile
