// Count-Min sketch (Cormode & Muthukrishnan 2005).
//
// depth × width counter matrix; each row hashes the key independently.
// Point estimate = min over rows — never an undercount for add-only
// streams, and still an upper bound in the strict turnstile model (adds
// and removes, counts never negative), which matches the paper's log
// streams under multiset-consistent removal. Width w and depth d give
// error <= e·n/w with probability >= 1 - e^-d.

#ifndef SPROFILE_SKETCH_COUNT_MIN_H_
#define SPROFILE_SKETCH_COUNT_MIN_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace sprofile {
namespace sketch {

class CountMinSketch {
 public:
  /// `width` counters per row, `depth` independent rows. Memory:
  /// width × depth × 8 bytes.
  CountMinSketch(uint32_t width, uint32_t depth, uint64_t seed = 0xc0ffee)
      : width_(width), depth_(depth), table_(static_cast<size_t>(width) * depth, 0) {
    SPROFILE_CHECK(width > 0 && depth > 0);
    uint64_t s = seed;
    row_seeds_.reserve(depth);
    for (uint32_t d = 0; d < depth; ++d) row_seeds_.push_back(SplitMix64(&s));
  }

  /// count += delta for `key`. Negative deltas model "remove" events; the
  /// caller must keep true counts nonnegative (strict turnstile) for the
  /// upper-bound guarantee to hold.
  void Update(uint64_t key, int64_t delta) {
    for (uint32_t d = 0; d < depth_; ++d) {
      table_[Index(d, key)] += delta;
    }
  }

  void Add(uint64_t key) { Update(key, +1); }
  void Remove(uint64_t key) { Update(key, -1); }

  /// Point estimate: min over rows.
  int64_t Estimate(uint64_t key) const {
    int64_t best = table_[Index(0, key)];
    for (uint32_t d = 1; d < depth_; ++d) {
      best = std::min(best, table_[Index(d, key)]);
    }
    return best;
  }

  uint32_t width() const { return width_; }
  uint32_t depth() const { return depth_; }

  /// Bytes of counter storage (for the accuracy/space bench).
  size_t MemoryBytes() const { return table_.size() * sizeof(int64_t); }

 private:
  size_t Index(uint32_t row, uint64_t key) const {
    const uint64_t h = Mix64(key ^ row_seeds_[row]);
    return static_cast<size_t>(row) * width_ + (h % width_);
  }

  uint32_t width_;
  uint32_t depth_;
  std::vector<int64_t> table_;
  std::vector<uint64_t> row_seeds_;
};

}  // namespace sketch
}  // namespace sprofile

#endif  // SPROFILE_SKETCH_COUNT_MIN_H_
