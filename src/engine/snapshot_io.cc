#include "sprofile/engine/snapshot_io.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/profile_io.h"
#include "sprofile/obs/trace_ring.h"
#include "util/failpoint.h"

namespace sprofile {
namespace engine {

namespace {

constexpr const char* kManifestMagic = "sprofile-engine-snapshot";
constexpr int kManifestVersion = 1;

std::string ShardFileName(uint32_t shard, uint64_t generation) {
  return "shard-" + std::to_string(shard) + ".g" + std::to_string(generation) +
         ".sppf";
}

/// The manifest header: everything before the per-shard records. ONE
/// parser serves both LoadAll and SaveAll's old-generation cleanup, so a
/// future format change cannot diverge between the two.
struct ManifestHeader {
  uint32_t capacity = 0;
  uint32_t shards = 0;
  uint64_t generation = 0;
};

/// Parses the header from `in`. Non-OK means unreadable/foreign/wrong
/// version; the shard records (if any) remain unread in the stream.
Status ReadManifestHeader(std::istream& in, const std::string& manifest_path,
                          ManifestHeader* out) {
  std::string magic, key;
  int version = 0;
  if (!(in >> magic >> version) || magic != kManifestMagic) {
    return Status::Corruption(manifest_path + ": bad manifest magic");
  }
  if (version != kManifestVersion) {
    return Status::Corruption(manifest_path + ": unsupported version " +
                              std::to_string(version));
  }
  if (!(in >> key >> out->capacity) || key != "capacity") {
    return Status::Corruption(manifest_path + ": missing capacity record");
  }
  if (!(in >> key >> out->shards) || key != "shards") {
    return Status::Corruption(manifest_path + ": missing shards record");
  }
  if (!(in >> key >> out->generation) || key != "generation") {
    return Status::Corruption(manifest_path + ": missing generation record");
  }
  return Status::OK();
}

/// The previous save's lineage, or all-zero when there is none (or it is
/// unreadable — a fresh save then starts a new lineage at 1).
ManifestHeader ReadOldLineage(const std::string& manifest_path) {
  std::ifstream in(manifest_path);
  ManifestHeader header;
  if (!in || !ReadManifestHeader(in, manifest_path, &header).ok()) return {};
  return header;
}

class FilesystemSnapshotSink final : public SnapshotSink {};

}  // namespace

Status SnapshotSink::CreateDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create snapshot directory " + dir + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status SnapshotSink::WriteFile(const std::string& path,
                               std::string_view bytes) {
  if (SPROFILE_FAILPOINT("snapshot_save_write_fail")) {
    // Injected disk-full/EIO: SaveAll must abandon the save with the
    // previous generation fully intact (the crash-consistency contract).
    return Status::IOError("injected write failure (failpoint "
                           "snapshot_save_write_fail): " + path);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Status SnapshotSink::RenameFile(const std::string& from,
                                const std::string& to) {
  std::error_code ec;
  std::filesystem::rename(from, to, ec);
  if (ec) {
    return Status::IOError("cannot commit " + to + ": " + ec.message());
  }
  return Status::OK();
}

void SnapshotSink::RemoveFileBestEffort(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

SnapshotSink& DefaultSnapshotSink() {
  static FilesystemSnapshotSink sink;
  return sink;
}

Status SaveAll(ShardedProfiler& engine, const std::string& dir,
               SnapshotSink& sink) {
  // Read-your-writes, not quiesce: everything enqueued before this call is
  // applied and published, but producers may keep ingesting while the
  // shard images are serialized below — the images read frozen snapshot
  // pages (COW), so the save never blocks the workers.
  engine.Flush();

  SPROFILE_RETURN_NOT_OK(sink.CreateDir(dir));

  // Crash consistency: shard files carry a generation number in their
  // names, so an in-place re-save never truncates a file the CURRENT
  // manifest names. The new manifest is written to a temp name and
  // renamed over MANIFEST as the single atomic commit point — a crash at
  // any earlier step leaves the previous generation fully intact
  // (tests/engine_snapshot_io_test.cc proves this at every byte offset).
  const std::string manifest_path = dir + "/" + kManifestFileName;
  const ManifestHeader old_lineage = ReadOldLineage(manifest_path);
  const uint64_t generation = old_lineage.generation + 1;

  const auto snapshots = engine.SnapshotAll();
  std::ostringstream manifest;
  manifest << kManifestMagic << ' ' << kManifestVersion << '\n';
  manifest << "capacity " << engine.capacity() << '\n';
  manifest << "shards " << engine.num_shards() << '\n';
  manifest << "generation " << generation << '\n';
  for (uint32_t s = 0; s < engine.num_shards(); ++s) {
    const auto& snap = snapshots[s];
    const uint32_t shard_capacity = snap->profile.capacity();
    std::string file = "-";
    if (shard_capacity > 0) {
      file = ShardFileName(s, generation);
      SPROFILE_ASSIGN_OR_RETURN(const std::string bytes,
                                SerializeProfile(snap->profile.backend()));
      SPROFILE_RETURN_NOT_OK(sink.WriteFile(dir + "/" + file, bytes));
      // Lands in the SAVING thread's ring (usually the global fallback):
      // the spill is a reader-side operation, not a shard-worker one.
      obs::Trace(obs::TraceEvent::kSpill, s, bytes.size());
    }
    manifest << "shard " << s << ' ' << shard_capacity << ' ' << snap->epoch
             << ' ' << file << '\n';
  }

  const std::string tmp_path = manifest_path + ".tmp";
  SPROFILE_RETURN_NOT_OK(sink.WriteFile(tmp_path, manifest.str()));
  SPROFILE_RETURN_NOT_OK(sink.RenameFile(tmp_path, manifest_path));

  // The commit succeeded; the previous generation's shard files are now
  // unreferenced. Removal is best-effort cleanup, not correctness — and it
  // iterates the OLD manifest's shard count, which may differ from this
  // engine's.
  if (old_lineage.generation > 0) {
    for (uint32_t s = 0; s < old_lineage.shards; ++s) {
      sink.RemoveFileBestEffort(
          dir + "/" + ShardFileName(s, old_lineage.generation));
    }
  }
  return Status::OK();
}

Status SaveAll(ShardedProfiler& engine, const std::string& dir) {
  return SaveAll(engine, dir, DefaultSnapshotSink());
}

StatusOr<ShardedProfiler> LoadAll(const std::string& dir,
                                  const EngineOptions& options) {
  const std::string manifest_path = dir + "/" + kManifestFileName;
  if (SPROFILE_FAILPOINT("snapshot_load_read_fail")) {
    // Injected unreadable manifest: restore paths must degrade to a clean
    // Status, never a partially constructed engine.
    return Status::IOError("injected read failure (failpoint "
                           "snapshot_load_read_fail): " + manifest_path);
  }
  std::ifstream in(manifest_path);
  if (!in) return Status::IOError("cannot open " + manifest_path);

  ManifestHeader header;
  SPROFILE_RETURN_NOT_OK(ReadManifestHeader(in, manifest_path, &header));
  const uint32_t capacity = header.capacity;
  const uint32_t shards = header.shards;
  if (shards == 0 || shards > EngineOptions::kMaxShards) {
    return Status::Corruption(manifest_path + ": implausible shard count " +
                              std::to_string(shards));
  }

  struct ShardRecord {
    bool seen = false;
    uint32_t capacity = 0;
    std::string file;
  };
  std::vector<ShardRecord> records(shards);
  for (uint32_t i = 0; i < shards; ++i) {
    uint32_t index = 0, shard_capacity = 0;
    uint64_t epoch = 0;
    std::string key, file;
    if (!(in >> key >> index >> shard_capacity >> epoch >> file) ||
        key != "shard") {
      return Status::Corruption(manifest_path + ": truncated shard records");
    }
    if (index >= shards || records[index].seen) {
      return Status::Corruption(manifest_path + ": bad shard index " +
                                std::to_string(index));
    }
    const uint32_t expected =
        ShardedProfiler::ShardCapacity(capacity, shards, index);
    if (shard_capacity != expected) {
      return Status::Corruption(
          manifest_path + ": shard " + std::to_string(index) + " capacity " +
          std::to_string(shard_capacity) + " does not match the stride " +
          "partition (expected " + std::to_string(expected) + ")");
    }
    // The file name is fully determined by the index and generation;
    // accepting anything else would let a crafted manifest redirect the
    // load outside `dir`.
    const std::string expected_file =
        shard_capacity == 0 ? "-" : ShardFileName(index, header.generation);
    if (file != expected_file) {
      return Status::Corruption(manifest_path + ": shard " +
                                std::to_string(index) + " names file '" +
                                file + "', expected '" + expected_file + "'");
    }
    records[index] = ShardRecord{true, shard_capacity, file};
  }

  EngineOptions engine_options = options;
  engine_options.shards = shards;
  SPROFILE_RETURN_NOT_OK(engine_options.Validate());

  std::vector<adapters::SProfile> backends;
  backends.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    if (records[s].capacity == 0) {
      backends.emplace_back(0u);
      continue;
    }
    SPROFILE_ASSIGN_OR_RETURN(FrequencyProfile profile,
                              LoadProfile(dir + "/" + records[s].file));
    if (profile.capacity() != records[s].capacity) {
      return Status::Corruption(dir + "/" + records[s].file + ": capacity " +
                                std::to_string(profile.capacity()) +
                                " disagrees with the manifest");
    }
    backends.emplace_back(std::move(profile));
  }
  return ShardedProfiler(std::move(backends), capacity, engine_options);
}

}  // namespace engine
}  // namespace sprofile
