// Explicit instantiation of the default engine (S-Profile shards), so the
// ~700 lines of worker/merge machinery compile once here instead of in
// every consumer TU. Other backends (e.g. ShardedProfilerT<adapters::Naive>
// in the parity tests) instantiate implicitly.
//
// Also home of the arena-allocator construction: the only place the engine
// reaches into core/page_arena.h, keeping the public header clean of core
// internals (the splint facade-includes rule).

#include "sprofile/engine/sharded_profiler.h"

#include "core/page_arena.h"

namespace sprofile {
namespace engine {
namespace internal {

cow::PageAllocatorRef MakeEngineArenaAllocator(const EngineOptions& options,
                                               int pin_core,
                                               uint64_t footprint_bytes) {
  (void)pin_core;
  cow::ArenaOptions ao;
  ao.arena_bytes = static_cast<size_t>(options.arena_bytes);
  // Size the first arena mapping to the shard's expected storage footprint
  // (clamped to [64 KiB, arena_bytes]) so hugepage-sized shards start on a
  // hugepage-eligible mapping instead of climbing the doubling ladder.
  ao = cow::ArenaOptionsForFootprint(footprint_bytes, ao);
#if defined(SPROFILE_HAVE_NUMA)
  if (options.numa_policy == NumaPolicy::kLocal && pin_core >= 0 &&
      numa_available() >= 0) {
    ao.numa_node = numa_node_of_cpu(pin_core);
  }
#endif
  return cow::MakeArenaPageAllocator(ao);
}

}  // namespace internal

template class internal::ShardWorker<adapters::SProfile>;
template class ShardedProfilerT<adapters::SProfile>;

static_assert(FullProfiler<ShardedProfiler>,
              "the engine must speak the full concept vocabulary");
static_assert(ShardBackend<adapters::SProfile>);
static_assert(ShardBackend<adapters::Naive>);

}  // namespace engine
}  // namespace sprofile
