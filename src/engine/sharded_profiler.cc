// Explicit instantiation of the default engine (S-Profile shards), so the
// ~700 lines of worker/merge machinery compile once here instead of in
// every consumer TU. Other backends (e.g. ShardedProfilerT<adapters::Naive>
// in the parity tests) instantiate implicitly.

#include "sprofile/engine/sharded_profiler.h"

namespace sprofile {
namespace engine {

template class internal::ShardWorker<adapters::SProfile>;
template class ShardedProfilerT<adapters::SProfile>;

static_assert(FullProfiler<ShardedProfiler>,
              "the engine must speak the full concept vocabulary");
static_assert(ShardBackend<adapters::SProfile>);
static_assert(ShardBackend<adapters::Naive>);

}  // namespace engine
}  // namespace sprofile
