#include "baselines/indexable_skiplist.h"

namespace sprofile {
namespace baselines {

bool IndexableSkipList::Insert(FreqIdPair element) {
  // Walk down from the top level recording, per level, the node after
  // which the new element goes and how many elements precede that node.
  NodeRef update[kMaxHeight];
  uint64_t rank_at[kMaxHeight];  // elements strictly before update[lvl]

  NodeRef cur = 0;
  uint64_t rank = 0;
  for (int lvl = height_ - 1; lvl >= 0; --lvl) {
    for (;;) {
      const Link& link = nodes_[cur].links[lvl];
      if (link.next == kNil || !(nodes_[link.next].element < element)) break;
      rank += link.span;
      cur = link.next;
    }
    update[lvl] = cur;
    rank_at[lvl] = rank;
  }

  const NodeRef at = nodes_[cur].links[0].next;
  if (at != kNil && nodes_[at].element == element) return false;

  const int h = RandomHeight();
  if (h > height_) {
    for (int lvl = height_; lvl < h; ++lvl) {
      update[lvl] = 0;       // head
      rank_at[lvl] = 0;
      // The head's link at a fresh level spans the whole current list.
      nodes_[0].links[lvl] = Link{kNil, size_};
    }
    height_ = h;
  }

  const NodeRef fresh = NewNode(element, h);
  const uint64_t insert_rank = rank_at[0] + 1;  // 1-based rank of new node
  for (int lvl = 0; lvl < h; ++lvl) {
    Link& pred_link = nodes_[update[lvl]].links[lvl];
    const uint64_t pred_rank = rank_at[lvl];  // elements before update[lvl]
    Node& fresh_node = nodes_[fresh];
    fresh_node.links[lvl].next = pred_link.next;
    // Span from fresh to its successor at this level: elements the old
    // link skipped, minus those now ahead of the new node.
    fresh_node.links[lvl].span =
        pred_link.next == kNil ? 0 : pred_link.span - (insert_rank - 1 - pred_rank);
    pred_link.next = fresh;
    pred_link.span = insert_rank - pred_rank;
  }
  // Levels above h: every link crossing the insertion point spans one more.
  for (int lvl = h; lvl < height_; ++lvl) {
    Link& link = nodes_[update[lvl]].links[lvl];
    if (link.next != kNil || link.span > 0) link.span += 1;
  }
  // Head links at levels >= height_ untouched (they are reset on growth).
  ++size_;
  return true;
}

bool IndexableSkipList::Erase(FreqIdPair element) {
  NodeRef update[kMaxHeight];
  NodeRef cur = 0;
  for (int lvl = height_ - 1; lvl >= 0; --lvl) {
    for (;;) {
      const Link& link = nodes_[cur].links[lvl];
      if (link.next == kNil || !(nodes_[link.next].element < element)) break;
      cur = link.next;
    }
    update[lvl] = cur;
  }

  const NodeRef victim = nodes_[cur].links[0].next;
  if (victim == kNil || !(nodes_[victim].element == element)) return false;

  const int h = nodes_[victim].height;
  for (int lvl = 0; lvl < height_; ++lvl) {
    Link& link = nodes_[update[lvl]].links[lvl];
    if (lvl < h && link.next == victim) {
      // Splice the victim out; its span folds into the predecessor's.
      link.span += nodes_[victim].links[lvl].span;
      link.span -= 1;
      link.next = nodes_[victim].links[lvl].next;
      if (link.next == kNil) link.span = 0;
    } else if (link.next != kNil || link.span > 0) {
      link.span -= 1;
    }
  }
  while (height_ > 1 && nodes_[0].links[height_ - 1].next == kNil) {
    nodes_[0].links[height_ - 1].span = 0;
    --height_;
  }
  free_list_.push_back(victim);
  --size_;
  return true;
}

bool IndexableSkipList::Contains(FreqIdPair element) const {
  NodeRef cur = 0;
  for (int lvl = height_ - 1; lvl >= 0; --lvl) {
    for (;;) {
      const Link& link = nodes_[cur].links[lvl];
      if (link.next == kNil || !(nodes_[link.next].element < element)) break;
      cur = link.next;
    }
  }
  const NodeRef at = nodes_[cur].links[0].next;
  return at != kNil && nodes_[at].element == element;
}

FreqIdPair IndexableSkipList::KthSmallest(uint64_t k) const {
  SPROFILE_DCHECK(k >= 1 && k <= size_);
  NodeRef cur = 0;
  uint64_t remaining = k;
  for (int lvl = height_ - 1; lvl >= 0; --lvl) {
    for (;;) {
      const Link& link = nodes_[cur].links[lvl];
      if (link.next == kNil || link.span > remaining) break;
      remaining -= link.span;
      cur = link.next;
      if (remaining == 0) return nodes_[cur].element;
    }
  }
  SPROFILE_CHECK_MSG(false, "KthSmallest walk failed (corrupt spans)");
  return FreqIdPair{};
}

uint64_t IndexableSkipList::CountLess(FreqIdPair element) const {
  NodeRef cur = 0;
  uint64_t rank = 0;
  for (int lvl = height_ - 1; lvl >= 0; --lvl) {
    for (;;) {
      const Link& link = nodes_[cur].links[lvl];
      if (link.next == kNil || !(nodes_[link.next].element < element)) break;
      rank += link.span;
      cur = link.next;
    }
  }
  return rank;
}

bool IndexableSkipList::Validate() const {
  // Level 0 must enumerate exactly size_ elements in strictly ascending
  // order with unit spans.
  uint64_t count = 0;
  NodeRef cur = nodes_[0].links[0].next;
  const FreqIdPair* prev = nullptr;
  while (cur != kNil) {
    if (prev != nullptr && !(*prev < nodes_[cur].element)) return false;
    prev = &nodes_[cur].element;
    ++count;
    cur = nodes_[cur].links[0].next;
  }
  if (count != size_) return false;

  // Every level: spans of a node's outgoing link must equal the number of
  // level-0 steps to the link target, and the level must be a subsequence.
  for (int lvl = 0; lvl < height_; ++lvl) {
    NodeRef walker = 0;
    while (walker != kNil) {
      const Link& link = nodes_[walker].links[lvl];
      if (link.next == kNil) break;
      // Count level-0 hops from walker to link.next.
      uint64_t hops = 0;
      NodeRef probe = walker;
      while (probe != link.next) {
        probe = nodes_[probe].links[0].next;
        if (probe == kNil) return false;  // target unreachable
        ++hops;
      }
      if (hops != link.span) return false;
      walker = link.next;
    }
  }
  return true;
}

}  // namespace baselines
}  // namespace sprofile
