#include "baselines/order_statistic_tree.h"

namespace sprofile {
namespace baselines {

// ---------------------------------------------------------------------------
// OrderStatisticTree
// ---------------------------------------------------------------------------

void OrderStatisticTree::Split(NodeRef t, FreqIdPair element, NodeRef* lo,
                               NodeRef* hi) {
  if (t == kNil) {
    *lo = *hi = kNil;
    return;
  }
  if (nodes_[t].element < element) {
    Split(nodes_[t].right, element, &nodes_[t].right, hi);
    *lo = t;
  } else {
    Split(nodes_[t].left, element, lo, &nodes_[t].left);
    *hi = t;
  }
  Pull(t);
}

OrderStatisticTree::NodeRef OrderStatisticTree::Merge(NodeRef lo, NodeRef hi) {
  if (lo == kNil) return hi;
  if (hi == kNil) return lo;
  if (nodes_[lo].priority > nodes_[hi].priority) {
    nodes_[lo].right = Merge(nodes_[lo].right, hi);
    Pull(lo);
    return lo;
  }
  nodes_[hi].left = Merge(lo, nodes_[hi].left);
  Pull(hi);
  return hi;
}

bool OrderStatisticTree::Insert(FreqIdPair element) {
  if (Contains(element)) return false;
  NodeRef lo, hi;
  Split(root_, element, &lo, &hi);
  root_ = Merge(Merge(lo, NewNode(element)), hi);
  return true;
}

bool OrderStatisticTree::Erase(FreqIdPair element) {
  // Split into (< e), then peel the == e singleton off the right part.
  NodeRef lo, hi;
  Split(root_, element, &lo, &hi);
  if (hi == kNil) {
    root_ = lo;
    return false;
  }
  // Leftmost node of hi is the smallest >= element; equal iff present.
  NodeRef mid, rest;
  FreqIdPair next{element.first, element.second + 1};
  if (element.second == 0xffffffffu) {
    next = FreqIdPair{element.first + 1, 0};
  }
  Split(hi, next, &mid, &rest);
  bool erased = false;
  if (mid != kNil) {
    SPROFILE_DCHECK(nodes_[mid].size == 1);
    SPROFILE_DCHECK(nodes_[mid].element == element);
    free_list_.push_back(mid);
    mid = kNil;
    erased = true;
  }
  root_ = Merge(lo, Merge(mid, rest));
  return erased;
}

bool OrderStatisticTree::Contains(FreqIdPair element) const {
  NodeRef t = root_;
  while (t != kNil) {
    if (nodes_[t].element == element) return true;
    t = element < nodes_[t].element ? nodes_[t].left : nodes_[t].right;
  }
  return false;
}

FreqIdPair OrderStatisticTree::KthSmallest(uint64_t k) const {
  SPROFILE_DCHECK(k >= 1 && k <= size());
  NodeRef t = root_;
  for (;;) {
    const uint64_t left_size = SizeOf(nodes_[t].left);
    if (k == left_size + 1) return nodes_[t].element;
    if (k <= left_size) {
      t = nodes_[t].left;
    } else {
      k -= left_size + 1;
      t = nodes_[t].right;
    }
  }
}

uint64_t OrderStatisticTree::CountLess(FreqIdPair element) const {
  uint64_t count = 0;
  NodeRef t = root_;
  while (t != kNil) {
    if (nodes_[t].element < element) {
      count += SizeOf(nodes_[t].left) + 1;
      t = nodes_[t].right;
    } else {
      t = nodes_[t].left;
    }
  }
  return count;
}

bool OrderStatisticTree::ValidateFrom(NodeRef t, const FreqIdPair** prev) const {
  if (t == kNil) return true;
  const Node& node = nodes_[t];
  if (node.left != kNil && nodes_[node.left].priority > node.priority) return false;
  if (node.right != kNil && nodes_[node.right].priority > node.priority) return false;
  if (node.size != 1 + SizeOf(node.left) + SizeOf(node.right)) return false;
  if (!ValidateFrom(node.left, prev)) return false;
  if (*prev != nullptr && !(**prev < node.element)) return false;
  *prev = &node.element;
  return ValidateFrom(node.right, prev);
}

bool OrderStatisticTree::Validate() const {
  const FreqIdPair* prev = nullptr;
  return ValidateFrom(root_, &prev);
}

// ---------------------------------------------------------------------------
// CompressedFrequencyTree
// ---------------------------------------------------------------------------

CompressedFrequencyTree::NodeRef CompressedFrequencyTree::NewNode(int64_t freq) {
  NodeRef ref;
  if (!free_list_.empty()) {
    ref = free_list_.back();
    free_list_.pop_back();
    nodes_[ref] = Node{};
  } else {
    ref = static_cast<NodeRef>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[ref].freq = freq;
  nodes_[ref].priority = Mix64(++priority_counter_);
  nodes_[ref].left = nodes_[ref].right = kNil;
  nodes_[ref].count = nodes_[ref].total = 1;
  return ref;
}

void CompressedFrequencyTree::Split(NodeRef t, int64_t freq, NodeRef* lo,
                                    NodeRef* hi) {
  if (t == kNil) {
    *lo = *hi = kNil;
    return;
  }
  if (nodes_[t].freq < freq) {
    Split(nodes_[t].right, freq, &nodes_[t].right, hi);
    *lo = t;
  } else {
    Split(nodes_[t].left, freq, lo, &nodes_[t].left);
    *hi = t;
  }
  Pull(t);
}

CompressedFrequencyTree::NodeRef CompressedFrequencyTree::Merge(NodeRef lo,
                                                                NodeRef hi) {
  if (lo == kNil) return hi;
  if (hi == kNil) return lo;
  if (nodes_[lo].priority > nodes_[hi].priority) {
    nodes_[lo].right = Merge(nodes_[lo].right, hi);
    Pull(lo);
    return lo;
  }
  nodes_[hi].left = Merge(lo, nodes_[hi].left);
  Pull(hi);
  return hi;
}

void CompressedFrequencyTree::Insert(int64_t freq) {
  // Fast path: bump the count when a node for `freq` exists.
  NodeRef t = root_;
  while (t != kNil) {
    if (nodes_[t].freq == freq) {
      // Bump along the root->node path totals.
      NodeRef walk = root_;
      while (true) {
        nodes_[walk].total += 1;
        if (nodes_[walk].freq == freq) break;
        walk = freq < nodes_[walk].freq ? nodes_[walk].left : nodes_[walk].right;
      }
      nodes_[t].count += 1;
      return;
    }
    t = freq < nodes_[t].freq ? nodes_[t].left : nodes_[t].right;
  }
  NodeRef lo, hi;
  Split(root_, freq, &lo, &hi);
  root_ = Merge(Merge(lo, NewNode(freq)), hi);
}

void CompressedFrequencyTree::Erase(int64_t freq) {
  NodeRef t = root_;
  while (t != kNil && nodes_[t].freq != freq) {
    t = freq < nodes_[t].freq ? nodes_[t].left : nodes_[t].right;
  }
  SPROFILE_CHECK_MSG(t != kNil, "Erase of absent frequency");
  if (nodes_[t].count > 1) {
    NodeRef walk = root_;
    while (true) {
      nodes_[walk].total -= 1;
      if (nodes_[walk].freq == freq) break;
      walk = freq < nodes_[walk].freq ? nodes_[walk].left : nodes_[walk].right;
    }
    nodes_[t].count -= 1;
    return;
  }
  // Remove the node entirely via split/merge.
  NodeRef lo, hi, mid, rest;
  Split(root_, freq, &lo, &hi);
  Split(hi, freq + 1, &mid, &rest);
  SPROFILE_DCHECK(mid != kNil && nodes_[mid].freq == freq);
  free_list_.push_back(mid);
  root_ = Merge(lo, rest);
}

int64_t CompressedFrequencyTree::KthSmallest(uint64_t k) const {
  SPROFILE_DCHECK(k >= 1 && k <= size());
  NodeRef t = root_;
  for (;;) {
    const uint64_t left_total = TotalOf(nodes_[t].left);
    if (k <= left_total) {
      t = nodes_[t].left;
    } else if (k <= left_total + nodes_[t].count) {
      return nodes_[t].freq;
    } else {
      k -= left_total + nodes_[t].count;
      t = nodes_[t].right;
    }
  }
}

}  // namespace baselines
}  // namespace sprofile
