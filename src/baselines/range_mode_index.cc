#include "baselines/range_mode_index.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace sprofile {
namespace baselines {

RangeModeIndex::RangeModeIndex(std::vector<uint32_t> values, uint32_t num_values)
    : values_(std::move(values)), num_values_(num_values) {
  const size_t n = values_.size();
  positions_.resize(num_values_);
  for (size_t i = 0; i < n; ++i) {
    SPROFILE_CHECK_MSG(values_[i] < num_values_, "value out of declared range");
    positions_[values_[i]].push_back(static_cast<uint32_t>(i));
  }
  if (n == 0) return;

  block_size_ = std::max<size_t>(1, static_cast<size_t>(std::sqrt(n)));
  num_blocks_ = (n + block_size_ - 1) / block_size_;
  block_mode_.assign(num_blocks_ * num_blocks_, RangeMode{0, 0});

  // For each starting block, sweep right once with a running count table.
  std::vector<uint32_t> freq(num_values_, 0);
  for (size_t bi = 0; bi < num_blocks_; ++bi) {
    std::fill(freq.begin(), freq.end(), 0);
    RangeMode best{0, 0};
    for (size_t bj = bi; bj < num_blocks_; ++bj) {
      const size_t lo = bj * block_size_;
      const size_t hi = std::min(n, lo + block_size_);
      for (size_t i = lo; i < hi; ++i) {
        const uint32_t v = values_[i];
        freq[v] += 1;
        if (freq[v] > best.count) best = RangeMode{v, freq[v]};
      }
      block_mode_[bi * num_blocks_ + bj] = best;
    }
  }
}

uint32_t RangeModeIndex::CountInRange(uint32_t value, size_t l, size_t r) const {
  const std::vector<uint32_t>& pos = positions_[value];
  const auto lo = std::lower_bound(pos.begin(), pos.end(), static_cast<uint32_t>(l));
  const auto hi = std::upper_bound(pos.begin(), pos.end(), static_cast<uint32_t>(r));
  return static_cast<uint32_t>(hi - lo);
}

RangeModeIndex::RangeMode RangeModeIndex::Query(size_t l, size_t r) const {
  SPROFILE_CHECK_MSG(l <= r && r < values_.size(), "bad query range");
  const size_t bl = l / block_size_;
  const size_t br = r / block_size_;

  RangeMode best{values_[l], 0};
  // Middle: whole blocks strictly inside (bl, br); exists iff br >= bl+2.
  if (br >= bl + 2) {
    const RangeMode mid = block_mode_[(bl + 1) * num_blocks_ + (br - 1)];
    if (mid.count > 0) {
      // The precomputed count is for the whole middle; it is also the
      // count within [l, r] restricted to the middle, but the value may
      // have extra occurrences in the partial blocks — recount exactly.
      best = RangeMode{mid.value, CountInRange(mid.value, l, r)};
    }
  }

  // Partial blocks: every element is a candidate.
  auto scan = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i <= hi; ++i) {
      const uint32_t v = values_[i];
      // Skip repeated candidates cheaply: only evaluate the first
      // occurrence of v inside this partial segment.
      bool seen_before = false;
      for (size_t j = lo; j < i; ++j) {
        if (values_[j] == v) {
          seen_before = true;
          break;
        }
      }
      if (seen_before) continue;
      const uint32_t count = CountInRange(v, l, r);
      if (count > best.count || (count == best.count && v < best.value)) {
        best = RangeMode{v, count};
      }
    }
  };

  if (bl == br) {
    scan(l, r);
    return best;
  }
  const size_t left_end = (bl + 1) * block_size_ - 1;
  const size_t right_begin = br * block_size_;
  scan(l, std::min(left_end, r));
  scan(right_begin, r);
  return best;
}

}  // namespace baselines
}  // namespace sprofile
