// NaiveProfiler — the brute-force oracle.
//
// Stores the frequency array F and answers every query by scanning or
// sorting. O(1) updates, O(m)–O(m log m) queries. Exists so the property
// tests can diff every S-Profile answer against an implementation whose
// correctness is obvious; also the "no data structure" baseline in the
// query-cost ablation.

#ifndef SPROFILE_BASELINES_NAIVE_PROFILER_H_
#define SPROFILE_BASELINES_NAIVE_PROFILER_H_

#include <cstdint>
#include <vector>

#include "core/frequency_profile.h"  // FrequencyEntry, GroupStat

namespace sprofile {
namespace baselines {

class NaiveProfiler {
 public:
  explicit NaiveProfiler(uint32_t num_objects) : freq_(num_objects, 0) {}

  explicit NaiveProfiler(std::vector<int64_t> frequencies)
      : freq_(std::move(frequencies)) {}

  uint32_t capacity() const { return static_cast<uint32_t>(freq_.size()); }

  void Add(uint32_t id) { freq_[id] += 1; }
  void Remove(uint32_t id) { freq_[id] -= 1; }
  void Apply(uint32_t id, bool is_add) { is_add ? Add(id) : Remove(id); }

  int64_t Frequency(uint32_t id) const { return freq_[id]; }
  int64_t total_count() const;

  /// All ids tied at the maximum frequency, ascending by id. O(m).
  std::vector<uint32_t> ModeIds() const;
  int64_t ModeFrequency() const;

  /// All ids tied at the minimum frequency. O(m).
  std::vector<uint32_t> MinIds() const;
  int64_t MinFrequency() const;

  /// k-th smallest / largest frequency, k in [1, m]. O(m log m).
  int64_t KthSmallest(uint64_t k) const;
  int64_t KthLargest(uint64_t k) const;

  /// Lower median frequency. O(m log m).
  int64_t MedianFrequency() const { return KthSmallest((capacity() - 1) / 2 + 1); }

  uint32_t CountAtLeast(int64_t f) const;
  uint32_t CountEqual(int64_t f) const;

  /// Ascending (frequency, count) histogram. O(m log m).
  std::vector<GroupStat> Histogram() const;

  /// Top-k frequencies, descending. O(m log m).
  std::vector<int64_t> TopKFrequencies(uint32_t k) const;

  const std::vector<int64_t>& frequencies() const { return freq_; }

 private:
  std::vector<int64_t> freq_;
};

/// Offline statistics on a frozen frequency array via sorting — the
/// O(m log m) lower-bound route the paper's §1 describes for static data.
namespace offline {

/// Mode frequency of `freqs` by sort + linear scan.
int64_t ModeBySorting(std::vector<int64_t> freqs);

/// Lower median by nth_element.
int64_t MedianBySelection(std::vector<int64_t> freqs);

}  // namespace offline

}  // namespace baselines
}  // namespace sprofile

#endif  // SPROFILE_BASELINES_NAIVE_PROFILER_H_
