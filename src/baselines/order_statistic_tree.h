// Order-statistic treap over (frequency, id) pairs.
//
// This is the paper's §3.2 "balanced tree based method": a balanced BST
// holding all m (frequency, id) pairs, augmented with subtree sizes so the
// k-th order statistic (median, top-K boundary, ...) is an O(log m)
// descent. A ±1 frequency change is erase(old pair) + insert(new pair),
// i.e. two O(log m) operations — this is exactly what the paper's PBDS
// comparator does, and the generality S-Profile's O(1) update beats.
//
// Implementation: treap (randomized priorities, fixed seed for
// reproducibility) with pooled nodes and 32-bit links. Priorities come from
// mixing the node slot index, so behaviour is deterministic across runs.

#ifndef SPROFILE_BASELINES_ORDER_STATISTIC_TREE_H_
#define SPROFILE_BASELINES_ORDER_STATISTIC_TREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace sprofile {
namespace baselines {

/// The tree's element type: frequency first so ordering is by frequency
/// with id as tiebreak (making every element distinct).
using FreqIdPair = std::pair<int64_t, uint32_t>;

/// Size-augmented treap storing distinct FreqIdPair elements.
class OrderStatisticTree {
 public:
  OrderStatisticTree() = default;

  /// Pre-sizes the node pool.
  void Reserve(size_t n) {
    nodes_.reserve(n);
    free_list_.reserve(64);
  }

  size_t size() const { return root_ == kNil ? 0 : nodes_[root_].size; }
  bool empty() const { return root_ == kNil; }

  /// Inserts `element`; returns false when already present.
  bool Insert(FreqIdPair element);

  /// Erases `element`; returns false when absent.
  bool Erase(FreqIdPair element);

  bool Contains(FreqIdPair element) const;

  /// k-th smallest element, k in [1, size()]. O(log n).
  FreqIdPair KthSmallest(uint64_t k) const;

  /// k-th largest element, k in [1, size()]. O(log n).
  FreqIdPair KthLargest(uint64_t k) const { return KthSmallest(size() - k + 1); }

  /// Number of elements strictly smaller than `element`. O(log n).
  uint64_t CountLess(FreqIdPair element) const;

  /// 1-based rank of `element` if present (CountLess + 1 regardless). O(log n).
  uint64_t Rank(FreqIdPair element) const { return CountLess(element) + 1; }

  /// In-order visit (tests). `fn(FreqIdPair)`.
  template <typename Fn>
  void InOrder(Fn fn) const {
    InOrderFrom(root_, fn);
  }

  /// Structural verification for tests: BST order, heap priorities, sizes.
  bool Validate() const;

 private:
  using NodeRef = uint32_t;
  static constexpr NodeRef kNil = 0xffffffffu;

  struct Node {
    FreqIdPair element;
    uint64_t priority;
    NodeRef left = kNil;
    NodeRef right = kNil;
    uint64_t size = 1;
  };

  uint64_t SizeOf(NodeRef t) const { return t == kNil ? 0 : nodes_[t].size; }

  void Pull(NodeRef t) {
    nodes_[t].size = 1 + SizeOf(nodes_[t].left) + SizeOf(nodes_[t].right);
  }

  NodeRef NewNode(FreqIdPair element) {
    NodeRef ref;
    if (!free_list_.empty()) {
      ref = free_list_.back();
      free_list_.pop_back();
      nodes_[ref] = Node{};
    } else {
      ref = static_cast<NodeRef>(nodes_.size());
      nodes_.emplace_back();
    }
    nodes_[ref].element = element;
    // Deterministic "random" priority: mix the allocation counter.
    nodes_[ref].priority = Mix64(++priority_counter_);
    nodes_[ref].size = 1;
    nodes_[ref].left = nodes_[ref].right = kNil;
    return ref;
  }

  /// Splits t into (< element) and (>= element).
  void Split(NodeRef t, FreqIdPair element, NodeRef* lo, NodeRef* hi);

  /// Merges lo and hi where max(lo) < min(hi).
  NodeRef Merge(NodeRef lo, NodeRef hi);

  template <typename Fn>
  void InOrderFrom(NodeRef t, Fn fn) const {
    if (t == kNil) return;
    InOrderFrom(nodes_[t].left, fn);
    fn(nodes_[t].element);
    InOrderFrom(nodes_[t].right, fn);
  }

  bool ValidateFrom(NodeRef t, const FreqIdPair** prev) const;

  std::vector<Node> nodes_;
  std::vector<NodeRef> free_list_;
  NodeRef root_ = kNil;
  uint64_t priority_counter_ = 0x9e3779b9u;
};

/// Count-compressed variant: a treap keyed by frequency alone, holding a
/// multiplicity per node. Far fewer nodes when frequencies concentrate
/// (which log streams do), making it a *stronger* tree baseline; ablation
/// A-series shows S-Profile still wins. Not part of the paper.
class CompressedFrequencyTree {
 public:
  void Reserve(size_t n) { nodes_.reserve(n); }

  uint64_t size() const { return root_ == kNil ? 0 : nodes_[root_].total; }

  void Insert(int64_t freq);

  /// Erases one copy of `freq`; the copy must exist.
  void Erase(int64_t freq);

  /// k-th smallest frequency, k in [1, size()].
  int64_t KthSmallest(uint64_t k) const;

  /// Number of distinct frequencies currently stored.
  size_t num_distinct() const {
    return nodes_.size() - free_list_.size();
  }

 private:
  using NodeRef = uint32_t;
  static constexpr NodeRef kNil = 0xffffffffu;

  struct Node {
    int64_t freq;
    uint64_t priority;
    NodeRef left = kNil;
    NodeRef right = kNil;
    uint64_t count = 1;  // copies of `freq`
    uint64_t total = 1;  // copies in subtree
  };

  uint64_t TotalOf(NodeRef t) const { return t == kNil ? 0 : nodes_[t].total; }

  void Pull(NodeRef t) {
    nodes_[t].total =
        nodes_[t].count + TotalOf(nodes_[t].left) + TotalOf(nodes_[t].right);
  }

  NodeRef NewNode(int64_t freq);
  void Split(NodeRef t, int64_t freq, NodeRef* lo, NodeRef* hi);
  NodeRef Merge(NodeRef lo, NodeRef hi);

  std::vector<Node> nodes_;
  std::vector<NodeRef> free_list_;
  NodeRef root_ = kNil;
  uint64_t priority_counter_ = 0x85ebca6bu;
};

}  // namespace baselines
}  // namespace sprofile

#endif  // SPROFILE_BASELINES_ORDER_STATISTIC_TREE_H_
