// Indexable skip list over (frequency, id) pairs.
//
// The third classic way to maintain a sorted dynamic set (after the heap
// and the balanced tree): probabilistic towers with per-link *span*
// counters, giving O(log m) expected insert/erase and O(log m) k-th order
// statistic by walking spans. Skip lists are the memtable structure of
// LSM engines (RocksDB/LevelDB), which makes this the "what a database
// would already have lying around" baseline for the paper's median task.
//
// Deterministic: tower heights come from a fixed-seed xorshift, so runs
// reproduce. Nodes are pooled with 32-bit links.

#ifndef SPROFILE_BASELINES_INDEXABLE_SKIPLIST_H_
#define SPROFILE_BASELINES_INDEXABLE_SKIPLIST_H_

#include <cstdint>
#include <vector>

#include "baselines/order_statistic_tree.h"  // FreqIdPair
#include "util/logging.h"
#include "util/random.h"

namespace sprofile {
namespace baselines {

class IndexableSkipList {
 public:
  IndexableSkipList() { InitHead(); }

  void Reserve(size_t n) { nodes_.reserve(n + 1); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts `element`; returns false when already present. O(log n) exp.
  bool Insert(FreqIdPair element);

  /// Erases `element`; returns false when absent. O(log n) expected.
  bool Erase(FreqIdPair element);

  bool Contains(FreqIdPair element) const;

  /// k-th smallest, k in [1, size()]. O(log n) expected.
  FreqIdPair KthSmallest(uint64_t k) const;

  /// Number of elements strictly smaller than `element`.
  uint64_t CountLess(FreqIdPair element) const;

  /// Structural check (spans sum correctly, levels sorted). O(n · levels).
  bool Validate() const;

  /// Current tower height of the list (diagnostics).
  int height() const { return height_; }

 private:
  using NodeRef = uint32_t;
  static constexpr NodeRef kNil = 0xffffffffu;
  static constexpr int kMaxHeight = 24;  // supports ~16M elements at p=1/2

  struct Link {
    NodeRef next = kNil;
    uint64_t span = 0;  // elements skipped by following this link (incl. target)
  };

  struct Node {
    FreqIdPair element{};
    uint8_t height = 0;
    Link links[kMaxHeight];
  };

  void InitHead() {
    nodes_.clear();
    nodes_.emplace_back();  // head sentinel, element unused
    nodes_[0].height = kMaxHeight;
    for (int lvl = 0; lvl < kMaxHeight; ++lvl) {
      nodes_[0].links[lvl] = Link{kNil, 0};
    }
    free_list_.clear();
    size_ = 0;
    height_ = 1;
  }

  int RandomHeight() {
    // Geometric(1/2), capped. Deterministic sequence.
    int h = 1;
    uint64_t bits = rng_.Next();
    while ((bits & 1u) != 0 && h < kMaxHeight) {
      ++h;
      bits >>= 1;
    }
    return h;
  }

  NodeRef NewNode(FreqIdPair element, int height) {
    NodeRef ref;
    if (!free_list_.empty()) {
      ref = free_list_.back();
      free_list_.pop_back();
    } else {
      ref = static_cast<NodeRef>(nodes_.size());
      nodes_.emplace_back();
    }
    nodes_[ref].element = element;
    nodes_[ref].height = static_cast<uint8_t>(height);
    return ref;
  }

  std::vector<Node> nodes_;  // nodes_[0] is the head sentinel
  std::vector<NodeRef> free_list_;
  size_t size_ = 0;
  int height_ = 1;
  Xoshiro256PlusPlus rng_{0x5CA1AB1EULL};
};

}  // namespace baselines
}  // namespace sprofile

#endif  // SPROFILE_BASELINES_INDEXABLE_SKIPLIST_H_
