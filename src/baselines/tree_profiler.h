// TreeProfiler — the paper's §3.2 balanced-tree comparator.
//
// Keeps every (frequency, id) pair in an order-statistic tree. A ±1 update
// is erase(old) + insert(new): 2 × O(log m). Median / mode / k-th order
// statistic are O(log m) descents. The template parameter selects the tree
// implementation so the same driver runs our treap and (when available)
// GNU PBDS — the exact library the paper benchmarked [16].

#ifndef SPROFILE_BASELINES_TREE_PROFILER_H_
#define SPROFILE_BASELINES_TREE_PROFILER_H_

#include <cstdint>
#include <vector>

#include "baselines/order_statistic_tree.h"
#include "core/frequency_profile.h"  // FrequencyEntry
#include "util/logging.h"

namespace sprofile {
namespace baselines {

/// Balanced-tree profiler over a dense id space, generic in the tree.
/// Tree must provide Insert/Erase of FreqIdPair and KthSmallest(k).
template <typename Tree>
class TreeProfilerT {
 public:
  explicit TreeProfilerT(uint32_t num_objects) : freq_(num_objects, 0) {
    if constexpr (requires(Tree t, size_t n) { t.Reserve(n); }) {
      tree_.Reserve(num_objects);
    }
    // All objects start at frequency 0.
    for (uint32_t id = 0; id < num_objects; ++id) {
      tree_.Insert(FreqIdPair{0, id});
    }
  }

  uint32_t capacity() const { return static_cast<uint32_t>(freq_.size()); }

  int64_t Frequency(uint32_t id) const {
    SPROFILE_DCHECK(id < freq_.size());
    return freq_[id];
  }

  /// F[id] += 1: erase old pair, insert new. 2 × O(log m).
  void Add(uint32_t id) { Update(id, +1); }

  /// F[id] -= 1.
  void Remove(uint32_t id) { Update(id, -1); }

  void Apply(uint32_t id, bool is_add) { Update(id, is_add ? +1 : -1); }

  /// Lower median entry (k = floor((m-1)/2) + 1 smallest). O(log m).
  FrequencyEntry Median() const {
    const uint64_t k = (freq_.size() - 1) / 2 + 1;
    const FreqIdPair p = tree_.KthSmallest(k);
    return FrequencyEntry{p.second, p.first};
  }

  /// One maximum-frequency object. O(log m).
  FrequencyEntry Mode() const {
    const FreqIdPair p = tree_.KthSmallest(freq_.size());
    return FrequencyEntry{p.second, p.first};
  }

  /// k-th largest. O(log m).
  FrequencyEntry KthLargest(uint64_t k) const {
    const FreqIdPair p = tree_.KthSmallest(freq_.size() - k + 1);
    return FrequencyEntry{p.second, p.first};
  }

 private:
  void Update(uint32_t id, int delta) {
    SPROFILE_DCHECK(id < freq_.size());
    const int64_t old_freq = freq_[id];
    tree_.Erase(FreqIdPair{old_freq, id});
    freq_[id] = old_freq + delta;
    tree_.Insert(FreqIdPair{freq_[id], id});
  }

  Tree tree_;
  std::vector<int64_t> freq_;
};

/// The default balanced-tree baseline (our order-statistic treap).
using TreeProfiler = TreeProfilerT<OrderStatisticTree>;

}  // namespace baselines
}  // namespace sprofile

#endif  // SPROFILE_BASELINES_TREE_PROFILER_H_
