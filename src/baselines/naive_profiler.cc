#include "baselines/naive_profiler.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace sprofile {
namespace baselines {

int64_t NaiveProfiler::total_count() const {
  return std::accumulate(freq_.begin(), freq_.end(), static_cast<int64_t>(0));
}

std::vector<uint32_t> NaiveProfiler::ModeIds() const {
  SPROFILE_CHECK(!freq_.empty());
  const int64_t best = ModeFrequency();
  std::vector<uint32_t> ids;
  for (uint32_t id = 0; id < freq_.size(); ++id) {
    if (freq_[id] == best) ids.push_back(id);
  }
  return ids;
}

int64_t NaiveProfiler::ModeFrequency() const {
  SPROFILE_CHECK(!freq_.empty());
  return *std::max_element(freq_.begin(), freq_.end());
}

std::vector<uint32_t> NaiveProfiler::MinIds() const {
  SPROFILE_CHECK(!freq_.empty());
  const int64_t worst = MinFrequency();
  std::vector<uint32_t> ids;
  for (uint32_t id = 0; id < freq_.size(); ++id) {
    if (freq_[id] == worst) ids.push_back(id);
  }
  return ids;
}

int64_t NaiveProfiler::MinFrequency() const {
  SPROFILE_CHECK(!freq_.empty());
  return *std::min_element(freq_.begin(), freq_.end());
}

int64_t NaiveProfiler::KthSmallest(uint64_t k) const {
  SPROFILE_CHECK(k >= 1 && k <= freq_.size());
  std::vector<int64_t> sorted = freq_;
  std::nth_element(sorted.begin(), sorted.begin() + (k - 1), sorted.end());
  return sorted[k - 1];
}

int64_t NaiveProfiler::KthLargest(uint64_t k) const {
  return KthSmallest(freq_.size() - k + 1);
}

uint32_t NaiveProfiler::CountAtLeast(int64_t f) const {
  uint32_t count = 0;
  for (int64_t v : freq_) {
    if (v >= f) ++count;
  }
  return count;
}

uint32_t NaiveProfiler::CountEqual(int64_t f) const {
  uint32_t count = 0;
  for (int64_t v : freq_) {
    if (v == f) ++count;
  }
  return count;
}

std::vector<GroupStat> NaiveProfiler::Histogram() const {
  std::vector<int64_t> sorted = freq_;
  std::sort(sorted.begin(), sorted.end());
  std::vector<GroupStat> hist;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    hist.push_back(GroupStat{sorted[i], static_cast<uint32_t>(j - i)});
    i = j;
  }
  return hist;
}

std::vector<int64_t> NaiveProfiler::TopKFrequencies(uint32_t k) const {
  std::vector<int64_t> sorted = freq_;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

namespace offline {

int64_t ModeBySorting(std::vector<int64_t> freqs) {
  SPROFILE_CHECK(!freqs.empty());
  std::sort(freqs.begin(), freqs.end());
  return freqs.back();
}

int64_t MedianBySelection(std::vector<int64_t> freqs) {
  SPROFILE_CHECK(!freqs.empty());
  const size_t k = (freqs.size() - 1) / 2;
  std::nth_element(freqs.begin(), freqs.begin() + k, freqs.end());
  return freqs[k];
}

}  // namespace offline

}  // namespace baselines
}  // namespace sprofile
