// GNU policy-based data structures wrapper — the exact balanced tree the
// paper benchmarked against ([16]: libstdc++ `tree_order_statistics`).
//
// PBDS is a libstdc++ extension; availability is detected with
// __has_include so the library still builds on other standard libraries
// (the treap in tree_profiler.h is always available). Check
// SPROFILE_HAVE_PBDS before instantiating PbdsProfiler.

#ifndef SPROFILE_BASELINES_PBDS_PROFILER_H_
#define SPROFILE_BASELINES_PBDS_PROFILER_H_

#if defined(__has_include)
#if __has_include(<ext/pb_ds/assoc_container.hpp>)
#define SPROFILE_HAVE_PBDS 1
#endif
#endif

#ifndef SPROFILE_HAVE_PBDS
#define SPROFILE_HAVE_PBDS 0
#endif

#if SPROFILE_HAVE_PBDS

#include <ext/pb_ds/assoc_container.hpp>
#include <ext/pb_ds/tree_policy.hpp>

#include "baselines/order_statistic_tree.h"  // FreqIdPair
#include "baselines/tree_profiler.h"

namespace sprofile {
namespace baselines {

/// Adapter giving the PBDS red-black order-statistic tree the minimal
/// Insert/Erase/KthSmallest interface TreeProfilerT drives.
class PbdsOrderStatisticSet {
 public:
  bool Insert(FreqIdPair element) { return tree_.insert(element).second; }

  bool Erase(FreqIdPair element) { return tree_.erase(element) > 0; }

  /// k is 1-based; PBDS find_by_order is 0-based.
  FreqIdPair KthSmallest(uint64_t k) const { return *tree_.find_by_order(k - 1); }

  size_t size() const { return tree_.size(); }

 private:
  using Tree =
      __gnu_pbds::tree<FreqIdPair, __gnu_pbds::null_type, std::less<FreqIdPair>,
                       __gnu_pbds::rb_tree_tag,
                       __gnu_pbds::tree_order_statistics_node_update>;
  Tree tree_;
};

/// The paper's literal §3.2 baseline.
using PbdsProfiler = TreeProfilerT<PbdsOrderStatisticSet>;

}  // namespace baselines
}  // namespace sprofile

#endif  // SPROFILE_HAVE_PBDS

#endif  // SPROFILE_BASELINES_PBDS_PROFILER_H_
