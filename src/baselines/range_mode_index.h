// Static range-mode index (√-decomposition).
//
// The paper's related work (§1) covers *range mode*: given a static array
// A and indices (i, j), report the mode of A[i..j] ([4] Chan et al.,
// [10] Krizanc et al., [13] Petersen & Grabowski). This is the classic
// O(n^1.5) preprocessing / O(√n · log n) query structure:
//
//   - split A into blocks of ~√n elements;
//   - precompute the mode of every block range [bi, bj];
//   - a query's answer is either the precomputed mode of its fully
//     covered middle, or an element of the two partial blocks; each
//     candidate's exact count in [i, j] comes from binary searches over
//     per-value position lists.
//
// Static-only by design: it exists to contrast with S-Profile, which
// profiles the *whole* dynamic array under ±1 updates rather than
// arbitrary ranges of a frozen one.

#ifndef SPROFILE_BASELINES_RANGE_MODE_INDEX_H_
#define SPROFILE_BASELINES_RANGE_MODE_INDEX_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace sprofile {
namespace baselines {

class RangeModeIndex {
 public:
  /// Mode of one queried range.
  struct RangeMode {
    uint32_t value;  ///< a most-frequent value in the range
    uint32_t count;  ///< its number of occurrences there

    bool operator==(const RangeMode&) const = default;
  };

  /// Builds the index over `values` (each < num_values). O(n·√n) time,
  /// O(n + (n/√n)²) space.
  RangeModeIndex(std::vector<uint32_t> values, uint32_t num_values);

  /// Mode of values[l..r], inclusive; l <= r < size(). O(√n log n).
  RangeMode Query(size_t l, size_t r) const;

  size_t size() const { return values_.size(); }
  size_t block_size() const { return block_size_; }

 private:
  /// Occurrences of `value` within [l, r] via its sorted position list.
  uint32_t CountInRange(uint32_t value, size_t l, size_t r) const;

  std::vector<uint32_t> values_;
  uint32_t num_values_;
  size_t block_size_ = 1;
  size_t num_blocks_ = 0;
  // block_mode_[i * num_blocks_ + j]: mode of blocks i..j (j >= i).
  std::vector<RangeMode> block_mode_;
  // positions_[v]: sorted indices where v occurs.
  std::vector<std::vector<uint32_t>> positions_;
};

}  // namespace baselines
}  // namespace sprofile

#endif  // SPROFILE_BASELINES_RANGE_MODE_INDEX_H_
