// Addressable d-ary heap over per-object frequencies.
//
// This is the paper's "heap based method" (§3.1): a binary heap maintains
// the frequency array under ±1 updates in O(log m), with the mode at the
// root. "Addressable" means a position index maps each object id to its
// heap slot so a changed key can be sifted from where it sits.
//
// The arity is a template parameter; the paper's comparator is the binary
// max-heap (`MaxHeapProfiler` below), and the 4-ary variant exists for the
// ablation benches. A min-heap instantiation drives the heap-based graph
// shaving baseline.

#ifndef SPROFILE_BASELINES_ADDRESSABLE_HEAP_H_
#define SPROFILE_BASELINES_ADDRESSABLE_HEAP_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "core/frequency_profile.h"  // FrequencyEntry
#include "util/logging.h"

namespace sprofile {
namespace baselines {

/// Heap direction.
enum class HeapKind { kMax, kMin };

/// Addressable d-ary heap keyed by an external frequency array.
///
/// Frequencies start at 0. Increase/Decrease adjust one object's frequency
/// by +-1 and restore the heap in O(log_d m) (sift-up for changes toward
/// the root, sift-down otherwise).
template <HeapKind Kind = HeapKind::kMax, int Arity = 2>
class AddressableHeap {
  static_assert(Arity >= 2, "heap arity must be >= 2");

 public:
  explicit AddressableHeap(uint32_t num_objects)
      : freq_(num_objects, 0), heap_(num_objects), pos_(num_objects) {
    std::iota(heap_.begin(), heap_.end(), 0u);
    std::iota(pos_.begin(), pos_.end(), 0u);
  }

  uint32_t capacity() const { return static_cast<uint32_t>(freq_.size()); }

  int64_t Frequency(uint32_t id) const {
    SPROFILE_DCHECK(id < freq_.size());
    return freq_[id];
  }

  /// F[id] += 1 and restore. O(log m).
  void Add(uint32_t id) {
    SPROFILE_DCHECK(id < freq_.size());
    freq_[id] += 1;
    if constexpr (Kind == HeapKind::kMax) {
      SiftUp(pos_[id]);
    } else {
      SiftDown(pos_[id]);
    }
  }

  /// F[id] -= 1 and restore. O(log m).
  void Remove(uint32_t id) {
    SPROFILE_DCHECK(id < freq_.size());
    freq_[id] -= 1;
    if constexpr (Kind == HeapKind::kMax) {
      SiftDown(pos_[id]);
    } else {
      SiftUp(pos_[id]);
    }
  }

  void Apply(uint32_t id, bool is_add) { is_add ? Add(id) : Remove(id); }

  /// Root entry: the mode for a max-heap, the min-frequent for a min-heap.
  /// Note a heap yields *one* extreme object, not the whole tie group —
  /// one of the applicability gaps §3.1 points out.
  FrequencyEntry Top() const {
    SPROFILE_DCHECK(!heap_.empty());
    return FrequencyEntry{heap_[0], freq_[heap_[0]]};
  }

  /// Pops the root (used by the heap-based shaving baseline). O(log m).
  FrequencyEntry PopTop() {
    FrequencyEntry top = Top();
    const uint32_t last = heap_.back();
    SwapSlots(0, heap_.size() - 1);
    heap_.pop_back();
    pos_[top.id] = kGone;
    if (!heap_.empty() && last != top.id) SiftDown(0);
    return top;
  }

  /// Live entries remaining (== capacity until PopTop is used).
  size_t size() const { return heap_.size(); }

  /// Heap-order verification for tests. O(m).
  bool IsValidHeap() const {
    for (size_t i = 1; i < heap_.size(); ++i) {
      const size_t parent = (i - 1) / Arity;
      if (Before(heap_[i], heap_[parent])) return false;
    }
    for (size_t i = 0; i < heap_.size(); ++i) {
      if (pos_[heap_[i]] != i) return false;
    }
    return true;
  }

 private:
  static constexpr uint32_t kGone = 0xffffffffu;

  /// True when `a` must sit closer to the root than `b`.
  bool Before(uint32_t a, uint32_t b) const {
    if constexpr (Kind == HeapKind::kMax) {
      return freq_[a] > freq_[b];
    } else {
      return freq_[a] < freq_[b];
    }
  }

  void SwapSlots(size_t i, size_t j) {
    std::swap(heap_[i], heap_[j]);
    pos_[heap_[i]] = static_cast<uint32_t>(i);
    pos_[heap_[j]] = static_cast<uint32_t>(j);
  }

  void SiftUp(size_t i) {
    while (i > 0) {
      const size_t parent = (i - 1) / Arity;
      if (!Before(heap_[i], heap_[parent])) break;
      SwapSlots(i, parent);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    for (;;) {
      size_t best = i;
      const size_t first_child = i * Arity + 1;
      const size_t last_child = std::min(first_child + Arity, n);
      for (size_t c = first_child; c < last_child; ++c) {
        if (Before(heap_[c], heap_[best])) best = c;
      }
      if (best == i) break;
      SwapSlots(i, best);
      i = best;
    }
  }

  std::vector<int64_t> freq_;
  std::vector<uint32_t> heap_;  // heap slot -> id
  std::vector<uint32_t> pos_;   // id -> heap slot (kGone after PopTop)
};

/// The paper's §3.1 baseline: binary max-heap tracking the mode.
using MaxHeapProfiler = AddressableHeap<HeapKind::kMax, 2>;

/// Min-heap used by the heap-based graph shaving baseline.
using MinHeapProfiler = AddressableHeap<HeapKind::kMin, 2>;

/// 4-ary variant for the heap-arity ablation.
using QuaternaryMaxHeapProfiler = AddressableHeap<HeapKind::kMax, 4>;

}  // namespace baselines
}  // namespace sprofile

#endif  // SPROFILE_BASELINES_ADDRESSABLE_HEAP_H_
