# SIMD kernel dispatch probe — decides whether src/core/flat_kernel.h may
# compile its AVX2/AVX-512 staging paths (runtime-dispatched via
# __builtin_cpu_supports; the binary still runs on any x86-64).
#
# The kernel needs two toolchain features, probed together with a
# try_compile of cmake/probes/simd_kernel.cc:
#
#   - function multi-versioning via __attribute__((target("avx2"))) /
#     ("avx512f")) on a per-function basis (no global -mavx2 — the rest of
#     the build stays baseline x86-64 so one binary serves every machine);
#   - <immintrin.h> gather intrinsics under those target attributes.
#
# When the probe fails (non-x86 target, exotic toolchain), nothing breaks:
# flat_kernel.h's SPROFILE_X86_KERNEL_DISPATCH macro independently gates on
# architecture + compiler and falls back to the scalar kernel — the probe
# exists so the configure log SAYS which kernel a build will carry, and so
# CI's forced-scalar leg is an explicit choice rather than a silent one.
#
# SPROFILE_FORCE_SCALAR_KERNEL pins the scalar kernel even where the
# toolchain could vectorize: the CI matrix builds one leg with it to prove
# the scalar path stays live (and to give bench rows a kernel=scalar
# baseline on any machine).

option(SPROFILE_FORCE_SCALAR_KERNEL
  "Compile only the scalar update kernel; skip AVX2/AVX-512 staging paths \
even when the toolchain supports them (CI scalar leg, A/B benchmarking)" OFF)

if(SPROFILE_FORCE_SCALAR_KERNEL)
  add_compile_definitions(SPROFILE_FORCE_SCALAR_KERNEL)
  set(SPROFILE_SIMD_KERNEL "scalar (forced)")
else()
  try_compile(_sprofile_simd_ok
    ${CMAKE_BINARY_DIR}/simd_kernel_probe.dir
    SOURCES ${CMAKE_SOURCE_DIR}/cmake/probes/simd_kernel.cc
    CXX_STANDARD 20
    CXX_STANDARD_REQUIRED TRUE
  )
  if(_sprofile_simd_ok)
    set(SPROFILE_SIMD_KERNEL "scalar + AVX2/AVX-512 (runtime-dispatched)")
  else()
    set(SPROFILE_SIMD_KERNEL "scalar (toolchain lacks target-attribute intrinsics)")
  endif()
endif()
message(STATUS "sprofile update kernel: ${SPROFILE_SIMD_KERNEL}")
