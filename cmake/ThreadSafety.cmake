# Clang Thread Safety Analysis — enabled as a hard error on every clang
# build, plus a pair of try_compile probes that prove the analysis is
# actually live:
#
#   - thread_safety_violation.cc reads a SPROFILE_GUARDED_BY field without
#     the mutex; it MUST fail to compile. If it compiles, the annotations
#     have silently degraded to no-ops (a broken macro gate, a dropped
#     flag) and the whole compile-time proof is void — so we hard-stop the
#     configure.
#   - thread_safety_clean.cc is the same access done correctly through
#     MutexLock; it MUST compile, guarding against the flags being so
#     broken that everything fails.
#
# gcc/MSVC: the SPROFILE_ annotation macros expand to nothing, so neither
# the warning flags nor the probes apply (see src/util/thread_annotations.h
# — the TSan CI leg is the cross-compiler backstop).

if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  add_compile_options(-Wthread-safety -Werror=thread-safety)

  function(_sprofile_thread_safety_probe src expect_success)
    try_compile(_probe_ok
      ${CMAKE_BINARY_DIR}/thread_safety_probes/${src}.dir
      SOURCES ${CMAKE_SOURCE_DIR}/cmake/probes/${src}
      CMAKE_FLAGS "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src"
      COMPILE_DEFINITIONS "-Wthread-safety -Werror=thread-safety"
      CXX_STANDARD 20
      CXX_STANDARD_REQUIRED TRUE
    )
    if(expect_success AND NOT _probe_ok)
      message(FATAL_ERROR
        "thread-safety probe ${src} failed to compile: the analysis flags "
        "reject correct MutexLock usage — the toolchain or util/sync.h is "
        "broken.")
    endif()
    if(NOT expect_success AND _probe_ok)
      message(FATAL_ERROR
        "thread-safety probe ${src} COMPILED: an unguarded access to a "
        "SPROFILE_GUARDED_BY field was accepted, so the analysis is not "
        "live (annotation macros expanded to no-ops, or the flags were "
        "dropped). Refusing to configure with a dead proof.")
    endif()
    unset(_probe_ok CACHE)
  endfunction()

  _sprofile_thread_safety_probe(thread_safety_clean.cc TRUE)
  _sprofile_thread_safety_probe(thread_safety_violation.cc FALSE)
  message(STATUS "Thread safety analysis: live (negative-compile probe verified)")
endif()
