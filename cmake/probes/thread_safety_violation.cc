// Negative-compile probe: this translation unit MUST NOT compile under
// -Werror=thread-safety. It reads and writes a SPROFILE_GUARDED_BY field
// without holding its mutex; if clang accepts it, the annotations are
// dead and cmake/ThreadSafety.cmake aborts the configure.

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  int Bump() {
    ++value_;       // guarded_by violation: mu_ not held
    return value_;  // and again on the read
  }

 private:
  sprofile::Mutex mu_;
  int value_ SPROFILE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  return c.Bump();
}
