// Configure-time probe for cmake/SimdKernel.cmake: can this toolchain
// compile per-function target("avx2")/target("avx512f") variants using
// <immintrin.h> gathers, without global -mavx flags? Mirrors the idiom
// src/core/flat_kernel.h uses (runtime dispatch keeps the binary portable).
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>

#include <cstdint>

__attribute__((target("avx2"))) void GatherAvx2(const int* base,
                                                uint32_t* out) {
  const __m256i idx = _mm256_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14);
  const __m256i v = _mm256_i32gather_epi32(base, idx, 4);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), v);
}

__attribute__((target("avx512f"))) void GatherAvx512(const int* base,
                                                     uint32_t* out) {
  const __m512i idx = _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20,
                                        22, 24, 26, 28, 30);
  const __m512i v = _mm512_mask_i32gather_epi32(
      _mm512_setzero_si512(), static_cast<__mmask16>(0xffff), idx, base, 4);
  _mm512_storeu_si512(out, v);
}

int main() {
  return __builtin_cpu_supports("avx2") ? 0 : 1;
}
#else
#error "non-x86 target or unsupported compiler: scalar kernel only"
#endif
