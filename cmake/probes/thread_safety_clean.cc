// Positive probe for cmake/ThreadSafety.cmake: identical shape to
// thread_safety_violation.cc but with the access correctly scoped under
// MutexLock. MUST compile under -Werror=thread-safety — if it doesn't,
// the flags are rejecting correct code and the configure aborts.

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  int Bump() {
    sprofile::MutexLock lock(mu_);
    ++value_;
    return value_;
  }

 private:
  sprofile::Mutex mu_;
  int value_ SPROFILE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  return c.Bump();
}
