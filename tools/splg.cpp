// splg — command-line companion for SPLG log-stream files.
//
// Subcommands:
//   generate  synthesize a stream (paper presets or custom Zipf) to a file
//   info      print header metadata and integrity status of a file
//   stats     replay a file through S-Profile and report the statistics
//   convert   binary <-> CSV
//
// Examples:
//   splg generate --out=s1.splg --stream=1 --m=100000 --n=1000000 --seed=7
//   splg info s1.splg
//   splg stats s1.splg --topk=10
//   splg convert s1.splg s1.csv

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/frequency_profile.h"
#include "stream/log_stream.h"
#include "stream/stream_io.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using sprofile::FlagParser;
using sprofile::Status;
using sprofile::stream::StoredStream;

bool HasSuffix(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

sprofile::Result<StoredStream> ReadAny(const std::string& path) {
  if (HasSuffix(path, ".csv")) return sprofile::stream::ReadCsv(path);
  return sprofile::stream::ReadBinary(path);
}

Status WriteAny(const StoredStream& s, const std::string& path) {
  if (HasSuffix(path, ".csv")) return sprofile::stream::WriteCsv(s, path);
  return sprofile::stream::WriteBinary(s, path);
}

int CmdGenerate(int argc, char** argv) {
  std::string out;
  int64_t which = 1;
  int64_t m = 100000;
  int64_t n = 1000000;
  int64_t seed = 42;
  double zipf_s = 0.0;
  bool consistent = false;
  FlagParser flags;
  flags.AddString("out", &out, "output path (.splg binary or .csv)");
  flags.AddInt64("stream", &which, "paper preset: 1, 2 or 3");
  flags.AddInt64("m", &m, "id-space size");
  flags.AddInt64("n", &n, "number of events");
  flags.AddInt64("seed", &seed, "generator seed");
  flags.AddDouble("zipf", &zipf_s, "use Zipf(s) posPDF/negPDF instead of a preset");
  flags.AddBool("consistent", &consistent,
                "multiset-consistent removals (never remove an absent object)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Usage("splg generate").c_str());
    return 1;
  }
  if (out.empty()) {
    std::fprintf(stderr, "--out is required\n");
    return 1;
  }

  auto policy = consistent ? sprofile::stream::RemovalPolicy::kMultisetConsistent
                           : sprofile::stream::RemovalPolicy::kUnchecked;
  sprofile::stream::StreamConfig config;
  if (zipf_s > 0.0) {
    config.num_objects = static_cast<uint32_t>(m);
    config.removal_policy = policy;
    config.seed = static_cast<uint64_t>(seed);
    config.positive = std::make_shared<sprofile::stream::ZipfIdDistribution>(
        static_cast<uint32_t>(m), zipf_s);
    config.negative = config.positive;
  } else {
    config = sprofile::stream::MakePaperStreamConfig(
        static_cast<int>(which), static_cast<uint32_t>(m),
        static_cast<uint64_t>(seed), policy);
  }

  sprofile::stream::LogStreamGenerator gen(config);
  StoredStream stored;
  stored.num_objects = static_cast<uint32_t>(m);
  stored.tuples = gen.Take(static_cast<uint64_t>(n));
  if (Status s = WriteAny(stored, out); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu events (m=%lld) to %s\n", stored.tuples.size(),
              static_cast<long long>(m), out.c_str());
  return 0;
}

int CmdInfo(int argc, char** argv) {
  FlagParser flags;
  if (Status s = flags.Parse(argc, argv); !s.ok() || flags.positional().empty()) {
    std::fprintf(stderr, "usage: splg info <file>\n");
    return 1;
  }
  const std::string& path = flags.positional()[0];
  auto stream = ReadAny(path);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }
  const StoredStream& s = stream.value();
  uint64_t adds = 0;
  for (const auto& t : s.tuples) {
    if (t.is_add) ++adds;
  }
  std::printf("file:        %s\n", path.c_str());
  std::printf("id space m:  %u\n", s.num_objects);
  std::printf("events:      %zu (%llu adds, %llu removes)\n", s.tuples.size(),
              static_cast<unsigned long long>(adds),
              static_cast<unsigned long long>(s.tuples.size() - adds));
  std::printf("integrity:   checksum OK\n");
  return 0;
}

int CmdStats(int argc, char** argv) {
  int64_t topk = 5;
  FlagParser flags;
  flags.AddInt64("topk", &topk, "how many top entries to print");
  if (Status s = flags.Parse(argc, argv); !s.ok() || flags.positional().empty()) {
    std::fprintf(stderr, "usage: splg stats <file> [--topk=K]\n");
    return 1;
  }
  auto stream = ReadAny(flags.positional()[0]);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }
  const StoredStream& s = stream.value();

  sprofile::WallTimer timer;
  sprofile::FrequencyProfile profile(s.num_objects);
  for (const auto& t : s.tuples) profile.Apply(t.id, t.is_add);
  const double replay_s = timer.ElapsedSeconds();

  std::printf("replayed %zu events in %s (%.1f ns/event)\n\n", s.tuples.size(),
              sprofile::HumanSeconds(replay_s).c_str(),
              s.tuples.empty() ? 0.0 : 1e9 * replay_s / s.tuples.size());

  const auto mode = profile.Mode();
  std::printf("mode:    frequency %lld (%u object(s) tied)\n",
              static_cast<long long>(mode.frequency), mode.count());
  std::printf("min:     frequency %lld\n",
              static_cast<long long>(profile.MinFrequent().frequency));
  std::printf("median:  %lld    p90: %lld    p99: %lld\n",
              static_cast<long long>(profile.MedianEntry().frequency),
              static_cast<long long>(profile.Quantile(0.9).frequency),
              static_cast<long long>(profile.Quantile(0.99).frequency));
  std::printf("objects with positive frequency: %u of %u\n",
              profile.CountAtLeast(1), profile.capacity());

  sprofile::TablePrinter table({"rank", "object", "frequency"});
  std::vector<sprofile::FrequencyEntry> top;
  profile.TopK(static_cast<uint32_t>(topk), &top);
  for (size_t i = 0; i < top.size(); ++i) {
    table.AddRow({std::to_string(i + 1), std::to_string(top[i].id),
                  std::to_string(top[i].frequency)});
  }
  std::printf("\n%s", table.ToString().c_str());
  return 0;
}

int CmdConvert(int argc, char** argv) {
  FlagParser flags;
  if (Status s = flags.Parse(argc, argv); !s.ok() || flags.positional().size() != 2) {
    std::fprintf(stderr, "usage: splg convert <in> <out>   (.splg or .csv)\n");
    return 1;
  }
  auto stream = ReadAny(flags.positional()[0]);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }
  if (Status s = WriteAny(stream.value(), flags.positional()[1]); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("converted %zu events: %s -> %s\n", stream.value().tuples.size(),
              flags.positional()[0].c_str(), flags.positional()[1].c_str());
  return 0;
}

void PrintUsage() {
  std::fprintf(stderr,
               "splg — log-stream toolkit\n"
               "  splg generate --out=FILE [--stream=1|2|3] [--m=M] [--n=N]\n"
               "                [--seed=S] [--zipf=EXP] [--consistent]\n"
               "  splg info FILE\n"
               "  splg stats FILE [--topk=K]\n"
               "  splg convert IN OUT\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string cmd = argv[1];
  // Shift argv so each subcommand parses only its own arguments.
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  if (cmd == "generate") return CmdGenerate(sub_argc, sub_argv);
  if (cmd == "info") return CmdInfo(sub_argc, sub_argv);
  if (cmd == "stats") return CmdStats(sub_argc, sub_argv);
  if (cmd == "convert") return CmdConvert(sub_argc, sub_argv);
  PrintUsage();
  return 1;
}
