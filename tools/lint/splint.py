#!/usr/bin/env python3
"""splint — sprofile's repo-specific lint pass.

Mechanical enforcement of repo invariants that no general-purpose tool
checks (see tools/lint/README.md for the rationale behind each rule):

  test-registration   every tests/*_test.cc is registered in the
                      top-level CMakeLists SPROFILE_TESTS list
  sanitizer-coverage  every registered test that spawns threads is
                      matched by BOTH sanitizer ctest regexes in CI
  bench-json          every bench/*.cc emits machine-readable JSON lines
                      (EmitJsonLine or the bench_gbench_json.h reporter)
  atomic-orders       no implicit-memory-order atomic operation in the
                      lock-free cores (ring_buffer.h, cow_pages.h,
                      page_arena.h)
  facade-includes     public include/sprofile/ headers reach into
                      src/core only through the documented allowlist
  payload-alloc       page payload memory comes only from the two
                      allocators (cow_pages.h, page_arena.h) — no naked
                      mmap / operator-new / malloc elsewhere in the
                      storage layers
  metric-docs         every metric registered through the
                      SPROFILE_METRIC_* macros / AddCallbackGauge has a
                      catalog row in docs/OBSERVABILITY.md
  failpoint-docs      every SPROFILE_FAILPOINT injection site in the
                      library (src/, include/) has a catalog row in
                      docs/ROBUSTNESS.md — chaos tests arm points by
                      name, so an undocumented point is undiscoverable
  tracked-build-artifacts
                      no build*/ tree is committed to the repository
                      (PR 6 accidentally committed build_review/)
  intrinsics-confinement
                      x86 SIMD intrinsics (<immintrin.h>, _mm*_ calls,
                      __m256 types) appear only in src/core/flat_kernel.h
                      — every other file inherits its runtime dispatch
                      and scalar fallback instead of open-coding SIMD

Exit status: 0 clean, 1 violations (printed one per line as
path:line: [rule] message), 2 usage/internal error.

--selftest runs every rule against its seeded-violation fixture tree
(tools/lint/fixtures/<rule>/) and fails unless each rule fires there —
proving a refactor of this file cannot silently blunt a rule.
"""

import argparse
import os
import re
import sys

SCRIPT_DIR = os.path.dirname(os.path.abspath(__file__))
DEFAULT_ROOT = os.path.normpath(os.path.join(SCRIPT_DIR, "..", ".."))
FIXTURES_DIR = os.path.join(SCRIPT_DIR, "fixtures")

# A test spawns threads if it mentions any of these (ShardedProfiler
# tests spawn shard workers even without a literal std::thread).
THREAD_RE = re.compile(
    r"std::thread|std::jthread|pthread_create|ShardedProfiler")

# facade-includes allowlist: the public headers deliberately built on the
# core types they re-export. Everything else added to include/sprofile/
# must stay behind the facade (put the core include in a .cc — see
# src/engine/sharded_profiler.cc's MakeEngineArenaAllocator for the
# pattern).
FACADE_ALLOWED_CORE_INCLUDES = {
    # The concept vocabulary names GroupStat in its return types.
    "include/sprofile/profiler_concept.h": {"core/frequency_profile.h"},
    # The adapters ARE the core types' facade spellings.
    "include/sprofile/adapters.h": {
        "core/frequency_profile.h",
        "core/keyed_profile.h",
    },
    # CheckedProfiler wraps FrequencyProfile directly.
    "include/sprofile/checked.h": {"core/frequency_profile.h"},
    # Options translate into core construction parameters.
    "include/sprofile/options.h": {
        "core/frequency_profile.h",
        "core/keyed_profile.h",
    },
    # The engine's allocator seam (PageAllocatorRef) is part of its API.
    # page_arena.h is NOT allowed: arena construction is out-of-line in
    # src/engine/sharded_profiler.cc.
    "include/sprofile/engine/sharded_profiler.h": {"core/cow_pages.h"},
}

# payload-alloc: raw page-memory acquisition is confined to these files.
PAYLOAD_ALLOCATOR_FILES = {"cow_pages.h", "page_arena.h"}
PAYLOAD_SCAN_DIRS = ("src/core", "src/engine", "include/sprofile/engine")
PAYLOAD_FORBIDDEN = re.compile(
    r"\bmmap\s*\(|::operator new\b|\bstd::malloc\s*\(|\bmalloc\s*\(|"
    r"\bnew\s+(?:char|std::byte|uint8_t|unsigned char)\s*\[")

# atomic-orders applies to the lock-free storage cores and the obs
# record/trace paths, wherever they live under the scanned root.
ATOMIC_ORDER_FILES = {"ring_buffer.h", "cow_pages.h", "page_arena.h",
                      "metrics.h", "trace_ring.h"}

# metric-docs: where metric registrations live (tests may register
# ad-hoc metrics without documenting them), and the catalog they must
# appear in.
METRIC_SCAN_DIRS = ("src", "include", "bench", "examples")
METRIC_DOCS_PATH = "docs/OBSERVABILITY.md"
# Registration spellings: the macros, a literal-first-arg callback
# gauge, and {"name", "unit", ...} rows of a gauge table (see
# RegisterObsGauges in sharded_profiler.h). \s crosses clang-format
# line breaks.
METRIC_NAME_RES = (
    re.compile(r'SPROFILE_METRIC_(?:COUNTER|GAUGE|HISTOGRAM)\(\s*"([^"]+)"'),
    re.compile(r'AddCallbackGauge\(\s*"([^"]+)"'),
    re.compile(r'\{"(sprofile_[a-z0-9_]+)",\s*"'),
)
# failpoint-docs: injection sites live in the library only — tests and
# examples arm existing points (or registry-only names) and need no
# catalog entry.
FAILPOINT_SCAN_DIRS = ("src", "include")
FAILPOINT_DOCS_PATH = "docs/ROBUSTNESS.md"
FAILPOINT_SITE_RE = re.compile(r'SPROFILE_FAILPOINT\(\s*"([^"]+)"')

# intrinsics-confinement: the one header allowed to spell x86 SIMD.
# Everything else must call its dispatched wrappers, so the scalar
# fallback, the forced-scalar build, and non-x86 ports never rot.
# (cmake/probes/simd_kernel.cc mirrors the idiom at configure time; it
# sits outside the scanned trees on purpose.)
INTRINSICS_ALLOWED_FILES = {"src/core/flat_kernel.h"}
INTRINSICS_SCAN_DIRS = ("src", "include", "tests", "bench", "examples",
                        "tools")
INTRINSICS_RE = re.compile(
    r"#\s*include\s*<(?:immintrin|x86intrin|[xewpts]mmintrin|avx\w*intrin)"
    r"\.h>|\b_mm(?:256|512)?_\w+\s*\(|\b__m(?:64|128|256|512)[di]?\b|"
    r"\b__builtin_ia32_\w+")

ATOMIC_CALL_RE = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\(")
ATOMIC_DECL_RE = re.compile(r"std::atomic(?:<[^;]*>|_\w+)\s+(\w+)\s*[;{=]")
ATOMIC_OP_SHORTHAND = re.compile(r"(\+\+|--)\s*$|^\s*(\+\+|--)|[+\-|&^]?=[^=]")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def read(root, relpath):
    try:
        with open(os.path.join(root, relpath), encoding="utf-8") as f:
            return f.read()
    except OSError:
        return None


def iter_files(root, reldir, suffixes):
    base = os.path.join(root, reldir)
    if not os.path.isdir(base):
        return
    for dirpath, _, names in os.walk(base):
        for name in sorted(names):
            if name.endswith(tuple(suffixes)):
                full = os.path.join(dirpath, name)
                yield os.path.relpath(full, root).replace(os.sep, "/")


def registered_tests(cmake_text):
    m = re.search(r"set\(SPROFILE_TESTS\s*\n(.*?)\)", cmake_text, re.DOTALL)
    if m is None:
        return None
    return set(re.findall(r"(\w+)", m.group(1)))


def sanitizer_regexes(ci_text):
    """Maps sanitizer kind -> list of ctest -R regex strings, by pairing
    each `-R "..."` with the SPROFILE_SANITIZE_* flag seen in the same
    job (the nearest preceding cmake configure line)."""
    out = {"asan": [], "tsan": []}
    current = None
    for line in ci_text.splitlines():
        if "SPROFILE_SANITIZE_ADDRESS=ON" in line:
            current = "asan"
        elif "SPROFILE_SANITIZE_THREAD=ON" in line:
            current = "tsan"
        for pat in re.findall(r'-R\s+"([^"]+)"', line):
            if current is not None:
                out[current].append(pat)
    return out


# ---------------------------------------------------------------------------
# Rules. Each takes a root directory, returns a list of Violations.
# ---------------------------------------------------------------------------


def rule_test_registration(root):
    violations = []
    cmake = read(root, "CMakeLists.txt")
    if cmake is None:
        return violations
    registered = registered_tests(cmake)
    if registered is None:
        violations.append(Violation(
            "CMakeLists.txt", 1, "test-registration",
            "no set(SPROFILE_TESTS ...) list found"))
        return violations
    for rel in iter_files(root, "tests", ("_test.cc",)):
        name = os.path.basename(rel)[:-len(".cc")]
        if name not in registered:
            violations.append(Violation(
                rel, 1, "test-registration",
                f"{name} is not in the SPROFILE_TESTS list in "
                "CMakeLists.txt — it will never run under ctest"))
    return violations


def rule_sanitizer_coverage(root):
    violations = []
    ci = read(root, ".github/workflows/ci.yml")
    if ci is None:
        return violations
    regexes = sanitizer_regexes(ci)
    for kind in ("asan", "tsan"):
        if not regexes[kind]:
            violations.append(Violation(
                ".github/workflows/ci.yml", 1, "sanitizer-coverage",
                f"no ctest -R regex found for the {kind} job"))
    for rel in iter_files(root, "tests", ("_test.cc",)):
        text = read(root, rel) or ""
        if not THREAD_RE.search(text):
            continue
        name = os.path.basename(rel)[:-len(".cc")]
        for kind in ("asan", "tsan"):
            for pat in regexes[kind]:
                if not re.search(pat, name):
                    violations.append(Violation(
                        rel, 1, "sanitizer-coverage",
                        f"{name} spawns threads but the {kind} ctest "
                        f'regex "{pat}" does not match it — widen the '
                        "regex in .github/workflows/ci.yml"))
    return violations


def rule_bench_json(root):
    violations = []
    for rel in iter_files(root, "bench", (".cc",)):
        text = read(root, rel) or ""
        if "EmitJsonLine" in text or "bench_gbench_json.h" in text:
            continue
        violations.append(Violation(
            rel, 1, "bench-json",
            "bench emits no JSON lines (call EmitJsonLine or include "
            "bench_gbench_json.h) — the trajectory tooling cannot "
            "consume its output"))
    return violations


def _strip_comments(text):
    """Blanks out comments and string literals, preserving line structure
    (newlines survive so line numbers stay valid)."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "str":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"' or c == "\n":
                state = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def _call_args(text, open_paren):
    """Returns the argument substring of the call whose '(' is at
    open_paren, or None when unbalanced."""
    depth = 0
    for j in range(open_paren, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:j]
    return None


def rule_atomic_orders(root):
    violations = []
    targets = []
    for reldir in ("src", "include"):
        for suffix in (".h", ".cc"):
            for rel in iter_files(root, reldir, (suffix,)):
                if os.path.basename(rel) in ATOMIC_ORDER_FILES:
                    targets.append(rel)
    for rel in sorted(set(targets)):
        raw = read(root, rel) or ""
        text = _strip_comments(raw)
        # Member-function calls on atomics: every one must spell its
        # memory_order explicitly.
        for m in ATOMIC_CALL_RE.finditer(text):
            args = _call_args(text, text.index("(", m.start(1)))
            if args is None or "memory_order" not in args:
                line = text.count("\n", 0, m.start()) + 1
                violations.append(Violation(
                    rel, line, "atomic-orders",
                    f"atomic .{m.group(1)}() without an explicit "
                    "std::memory_order argument (defaults to seq_cst "
                    "silently)"))
        # Operator shorthand (x++, x += 1, x = v) on declared atomics is
        # always implicit seq_cst.
        atomics = set(ATOMIC_DECL_RE.findall(text))
        if atomics:
            shorthand = re.compile(
                r"(?:\+\+|--)\s*(%(names)s)\b|\b(%(names)s)\s*(?:\+\+|--|"
                r"[+\-|&^]=|=(?![=]))"
                % {"names": "|".join(re.escape(a) for a in atomics)})
            for m in shorthand.finditer(text):
                name = m.group(1) or m.group(2)
                # Skip declarations/initializations of the atomic itself.
                decl = re.compile(
                    r"std::atomic(?:<[^;]*>|_\w+)\s+" + re.escape(name))
                line_start = text.rfind("\n", 0, m.start()) + 1
                line_end = text.find("\n", m.start())
                line_text = text[line_start:line_end if line_end != -1 else None]
                if decl.search(line_text):
                    continue
                # Skip declarations of PLAIN variables that merely share a
                # name with an atomic elsewhere in the file (`uint64_t seq
                # = head_.fetch_add(...)`, default parameters, and plain
                # mirror structs like obs::TraceRecord).
                plain_decl = re.compile(
                    r"\b(?:const\s+)?[A-Za-z_][\w:]*(?:<[^<>]*>)?[&*\s]+"
                    + re.escape(name) + r"\s*=")
                if plain_decl.search(line_text):
                    continue
                line = text.count("\n", 0, m.start()) + 1
                violations.append(Violation(
                    rel, line, "atomic-orders",
                    f"operator shorthand on atomic '{name}' is implicit "
                    "seq_cst — use .load/.store/.fetch_* with an "
                    "explicit order"))
    return violations


def rule_facade_includes(root):
    violations = []
    include_re = re.compile(r'#include\s+"(core/[^"]+)"')
    for rel in iter_files(root, "include/sprofile", (".h",)):
        allowed = FACADE_ALLOWED_CORE_INCLUDES.get(rel, set())
        raw = read(root, rel) or ""
        for i, line in enumerate(raw.splitlines(), start=1):
            m = include_re.search(line)
            if m and m.group(1) not in allowed:
                violations.append(Violation(
                    rel, i, "facade-includes",
                    f'facade header includes "{m.group(1)}" which is not '
                    "in the documented allowlist (tools/lint/splint.py) "
                    "— move the dependency out of line (see "
                    "MakeEngineArenaAllocator) or extend the allowlist "
                    "with a rationale"))
    return violations


def rule_payload_alloc(root):
    violations = []
    for reldir in PAYLOAD_SCAN_DIRS:
        for rel in iter_files(root, reldir, (".h", ".cc")):
            if os.path.basename(rel) in PAYLOAD_ALLOCATOR_FILES:
                continue
            text = _strip_comments(read(root, rel) or "")
            for i, line in enumerate(text.splitlines(), start=1):
                if PAYLOAD_FORBIDDEN.search(line):
                    violations.append(Violation(
                        rel, i, "payload-alloc",
                        "raw page-memory allocation outside the two "
                        "allocators (HeapPageAllocator in cow_pages.h, "
                        "ArenaPageAllocator in page_arena.h) — route it "
                        "through a PageAllocator so stats, sanitizer "
                        "modes, and NUMA policy keep working"))
    return violations


def rule_metric_docs(root):
    violations = []
    docs = read(root, METRIC_DOCS_PATH)
    registrations = []  # (relpath, line, name)
    for reldir in METRIC_SCAN_DIRS:
        for rel in iter_files(root, reldir, (".h", ".cc", ".cpp")):
            raw = read(root, rel) or ""
            # Doc comments may quote the macro spelling as an example
            # ("SPROFILE_METRIC_COUNTER(\"name\", ...)") — blank those
            # lines (keeping line numbers) so only code registers.
            scrubbed = "\n".join(
                "" if line.lstrip().startswith("//") else line
                for line in raw.split("\n"))
            for pat in METRIC_NAME_RES:
                for m in pat.finditer(scrubbed):
                    line = scrubbed.count("\n", 0, m.start()) + 1
                    registrations.append((rel, line, m.group(1)))
    if not registrations:
        return violations
    if docs is None:
        violations.append(Violation(
            METRIC_DOCS_PATH, 1, "metric-docs",
            "metrics are registered but the catalog file is missing"))
        return violations
    documented = set(re.findall(r"^\|\s*`([^`]+)`", docs, re.M))
    seen = set()
    for rel, line, name in registrations:
        if name in documented or name in seen:
            continue
        seen.add(name)
        violations.append(Violation(
            rel, line, "metric-docs",
            f"metric '{name}' has no catalog row in {METRIC_DOCS_PATH} "
            "(a markdown table row starting with | `" + name + "` |) — "
            "every exported metric must be documented"))
    return violations


def rule_failpoint_docs(root):
    violations = []
    docs = read(root, FAILPOINT_DOCS_PATH)
    sites = []  # (relpath, line, name)
    for reldir in FAILPOINT_SCAN_DIRS:
        for rel in iter_files(root, reldir, (".h", ".cc", ".cpp")):
            raw = read(root, rel) or ""
            # failpoint.h itself spells the macro (definition + doc
            # examples); comment lines elsewhere may quote it too.
            if os.path.basename(rel) == "failpoint.h":
                continue
            scrubbed = "\n".join(
                "" if line.lstrip().startswith("//") else line
                for line in raw.split("\n"))
            for m in FAILPOINT_SITE_RE.finditer(scrubbed):
                line = scrubbed.count("\n", 0, m.start()) + 1
                sites.append((rel, line, m.group(1)))
    if not sites:
        return violations
    if docs is None:
        violations.append(Violation(
            FAILPOINT_DOCS_PATH, 1, "failpoint-docs",
            "failpoint sites exist but the catalog file is missing"))
        return violations
    documented = set(re.findall(r"^\|\s*`([^`]+)`", docs, re.M))
    seen = set()
    for rel, line, name in sites:
        if name in documented or name in seen:
            continue
        seen.add(name)
        violations.append(Violation(
            rel, line, "failpoint-docs",
            f"failpoint '{name}' has no catalog row in "
            f"{FAILPOINT_DOCS_PATH} (a markdown table row starting with "
            "| `" + name + "` |) — chaos tooling arms points by name, so "
            "every injection site must be documented"))
    return violations


def rule_tracked_build_artifacts(root):
    """Flags build*/ paths committed to the repository. With a .git
    directory the tracked set comes from `git ls-files` (the authoritative
    answer); the fixture tree has no .git, so it falls back to a
    filesystem walk."""
    violations = []
    build_re = re.compile(r"^build[^/]*/")
    paths = []
    if os.path.isdir(os.path.join(root, ".git")):
        import subprocess
        try:
            out = subprocess.run(
                ["git", "ls-files"], cwd=root, capture_output=True,
                text=True, check=True).stdout
        except (OSError, subprocess.CalledProcessError):
            return violations  # no git available: nothing to assert
        paths = out.splitlines()
    else:
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                rel = os.path.relpath(
                    os.path.join(dirpath, name), root).replace(os.sep, "/")
                paths.append(rel)
    flagged_dirs = set()
    for rel in paths:
        m = build_re.match(rel)
        if m is None:
            continue
        top = m.group(0)
        if top in flagged_dirs:
            continue  # one violation per build tree, not per file
        flagged_dirs.add(top)
        violations.append(Violation(
            rel, 1, "tracked-build-artifacts",
            f"build tree '{top}' is committed to the repository — "
            "`git rm -r --cached " + top.rstrip("/") + "` and keep "
            "build*/ in .gitignore"))
    return violations


def rule_intrinsics_confinement(root):
    violations = []
    for reldir in INTRINSICS_SCAN_DIRS:
        for rel in iter_files(root, reldir, (".h", ".cc", ".cpp")):
            if rel in INTRINSICS_ALLOWED_FILES:
                continue
            # The selftest fixtures contain seeded violations by design;
            # scanning tools/ must not flag them on the real repo.
            if rel.startswith("tools/lint/fixtures/"):
                continue
            text = _strip_comments(read(root, rel) or "")
            for i, line in enumerate(text.splitlines(), start=1):
                if INTRINSICS_RE.search(line):
                    violations.append(Violation(
                        rel, i, "intrinsics-confinement",
                        "x86 SIMD intrinsics outside src/core/"
                        "flat_kernel.h — call its runtime-dispatched "
                        "wrappers instead, so the scalar fallback and "
                        "the SPROFILE_FORCE_SCALAR_KERNEL build keep "
                        "covering this code path"))
    return violations


RULES = {
    "test-registration": rule_test_registration,
    "sanitizer-coverage": rule_sanitizer_coverage,
    "bench-json": rule_bench_json,
    "atomic-orders": rule_atomic_orders,
    "facade-includes": rule_facade_includes,
    "payload-alloc": rule_payload_alloc,
    "metric-docs": rule_metric_docs,
    "failpoint-docs": rule_failpoint_docs,
    "tracked-build-artifacts": rule_tracked_build_artifacts,
    "intrinsics-confinement": rule_intrinsics_confinement,
}

# Fixture directory name per rule (dashes -> underscores).
FIXTURE_FOR_RULE = {name: name.replace("-", "_") for name in RULES}


def run_rules(root, rule_names):
    violations = []
    for name in rule_names:
        violations.extend(RULES[name](root))
    return violations


def selftest():
    """Every rule must fire on its seeded-violation fixture tree AND stay
    quiet on files the fixture marks as clean (proving rules detect the
    violation, not just anything)."""
    failures = []
    for name, fixture in sorted(FIXTURE_FOR_RULE.items()):
        fixture_root = os.path.join(FIXTURES_DIR, fixture)
        if not os.path.isdir(fixture_root):
            failures.append(f"{name}: fixture directory missing: {fixture_root}")
            continue
        found = RULES[name](fixture_root)
        if not found:
            failures.append(
                f"{name}: rule did NOT fire on its seeded-violation "
                f"fixture ({fixture_root}) — the rule has gone blind")
            continue
        for v in found:
            if "clean" in os.path.basename(v.path):
                failures.append(
                    f"{name}: rule fired on the fixture's CLEAN file "
                    f"({v}) — the rule over-matches")
        print(f"selftest ok: {name} fired {len(found)}x on its fixture")
    if failures:
        for f in failures:
            print(f"selftest FAIL: {f}", file=sys.stderr)
        return 1
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        prog="splint", description="sprofile repo-specific lint")
    parser.add_argument("--root", default=DEFAULT_ROOT,
                        help="repository root to lint (default: the repo "
                        "containing this script)")
    parser.add_argument("--rules", nargs="*", choices=sorted(RULES),
                        help="subset of rules to run (default: all)")
    parser.add_argument("--selftest", action="store_true",
                        help="verify every rule fires on its fixture")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()

    rule_names = args.rules if args.rules else sorted(RULES)
    violations = run_rules(args.root, rule_names)
    for v in violations:
        print(v)
    if violations:
        print(f"splint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"splint: clean ({len(rule_names)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
