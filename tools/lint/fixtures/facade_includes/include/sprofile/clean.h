// Fixture: only facade-to-facade includes — must NOT be flagged.
#ifndef FIXTURE_CLEAN_H_
#define FIXTURE_CLEAN_H_
#include "sprofile/widget.h"
#endif
