// Fixture: seeded violation — a facade header reaching into src/core
// outside the documented allowlist.
#ifndef FIXTURE_WIDGET_H_
#define FIXTURE_WIDGET_H_
#include "core/secret_internals.h"
#endif
