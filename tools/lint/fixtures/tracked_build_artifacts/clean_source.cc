// Clean file: lives outside any build*/ tree — the rule must not flag
// ordinary sources.
int main() { return 0; }
