// Fixture: seeded violation — raw page-payload memory acquired outside
// the two allocators (mmap and a naked char[] new).
#include <sys/mman.h>

inline void* GrabPages(unsigned long bytes) {
  void* block = mmap(nullptr, bytes, 0x3, 0x22, -1, 0);
  if (block == nullptr) block = new char[bytes];
  return block;
}
