// Fixture: allocates through the PageAllocator seam — must NOT be
// flagged.
struct PageAllocator {
  virtual void* Allocate(unsigned long bytes) = 0;
  virtual ~PageAllocator() = default;
};

inline void* GrabPages(PageAllocator& alloc, unsigned long bytes) {
  return alloc.Allocate(bytes);
}
