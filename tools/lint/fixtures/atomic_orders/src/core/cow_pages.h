// Fixture: seeded violations for the atomic-orders rule — an implicit
// seq_cst .load(), an orderless .fetch_add(), and operator shorthand on
// a declared atomic. The explicitly-ordered calls must NOT be flagged.
#include <atomic>

struct Fixture {
  std::atomic<int> refs{0};
  std::atomic<int> hits{0};

  int Bad() {
    int r = refs.load();            // violation: implicit seq_cst
    hits.fetch_add(1);              // violation: implicit seq_cst
    refs++;                         // violation: operator shorthand
    return r;
  }

  int Good() {
    hits.fetch_add(1, std::memory_order_relaxed);
    return refs.load(std::memory_order_acquire);
  }
};
