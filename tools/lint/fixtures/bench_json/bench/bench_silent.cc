// Fixture: seeded violation — a bench that prints human-only output and
// never emits a machine-readable JSON line.
#include <cstdio>
int main() {
  std::printf("elapsed: fast enough\n");
  return 0;
}
