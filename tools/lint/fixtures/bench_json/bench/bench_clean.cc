// Fixture: calls EmitJsonLine — must NOT be flagged.
void EmitJsonLine(const char*);
int main() {
  EmitJsonLine("{\"bench\":\"clean\"}");
  return 0;
}
