// Clean file: every registered metric has a catalog row in the fixture's
// docs/OBSERVABILITY.md — the rule must stay quiet here.
#include "sprofile/obs/metrics.h"

void Clean() {
  SPROFILE_METRIC_HISTOGRAM("sprofile_fixture_documented", "ns",
                            "A histogram with a catalog row")
      .Record(1);
}
