// Seeded violation: registers metrics that docs/OBSERVABILITY.md does
// not catalog — one per registration spelling the rule must recognize.
#include "sprofile/obs/metrics.h"

void Rogue() {
  SPROFILE_METRIC_COUNTER(
      "sprofile_fixture_undocumented_counter", "widgets",
      "A counter with no catalog row")
      .Increment();
  ::sprofile::obs::Registry::Global().AddCallbackGauge(
      "sprofile_fixture_undocumented_callback", "widgets",
      "A callback gauge with no catalog row", [] { return 0; });
}

struct StatGauge {
  const char* name;
  const char* unit;
};
constexpr StatGauge kRogueTable[] = {
    {"sprofile_fixture_undocumented_table", "widgets"},
};
