// Fixture: seeded violation — spawns a thread but no sanitizer ctest
// regex in the fixture ci.yml matches "util_widget".
#include <thread>
int main() {
  std::thread t([] {});
  t.join();
  return 0;
}
