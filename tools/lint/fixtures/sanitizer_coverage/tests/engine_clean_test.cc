// Fixture: spawns a thread AND matches both sanitizer regexes ("engine")
// — must NOT be flagged.
#include <thread>
int main() {
  std::thread t([] {});
  t.join();
  return 0;
}
