// Clean file: the injection site has a catalog row in the fixture's
// docs/ROBUSTNESS.md, and the commented spelling below must not count
// as a site: SPROFILE_FAILPOINT("fixture_comment_only_point").
#include "util/failpoint.h"

bool Clean() {
  if (SPROFILE_FAILPOINT("fixture_documented_point")) return false;
  return true;
}
