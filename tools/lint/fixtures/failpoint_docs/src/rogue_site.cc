// Seeded violation: an injection site whose name has no catalog row in
// the fixture's docs/ROBUSTNESS.md — the rule must fire here.
#include "util/failpoint.h"

bool Rogue() {
  if (SPROFILE_FAILPOINT("fixture_undocumented_point")) return false;
  return true;
}
