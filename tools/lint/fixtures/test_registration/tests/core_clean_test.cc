// Fixture: registered in CMakeLists.txt — must NOT be flagged.
int main() { return 0; }
