// Fixture: seeded violation — present on disk, absent from the
// SPROFILE_TESTS list, so ctest would never run it.
int main() { return 0; }
