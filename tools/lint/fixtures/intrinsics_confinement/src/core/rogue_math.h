// Seeded violation for the intrinsics-confinement selftest: open-coded
// x86 SIMD outside src/core/flat_kernel.h. Three distinct spellings the
// rule must catch — the include, a _mm*_ call, and a vector type.
#ifndef FIXTURE_ROGUE_MATH_H_
#define FIXTURE_ROGUE_MATH_H_

#include <immintrin.h>

#include <cstdint>

inline void RogueSum(const int* base, uint32_t* out) {
  const __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      _mm256_i32gather_epi32(base, idx, 4));
}

#endif  // FIXTURE_ROGUE_MATH_H_
