// Clean twin for the intrinsics-confinement selftest: mentions SIMD only
// in comments and through the dispatched wrapper API — the rule must stay
// quiet here. A comment naming _mm256_i32gather_epi32 or __m512i is
// documentation, not an intrinsic use; "summit_(x)" must not trip the
// _mm*_ call pattern either.
#ifndef FIXTURE_CLEAN_CONSUMER_H_
#define FIXTURE_CLEAN_CONSUMER_H_

#include <cstddef>
#include <cstdint>

// Imagine this forwards to flat_kernel.h's GatherEventRanks (AVX2 tier
// uses _mm256_i32gather_epi32 internally; AVX-512 uses __m512i lanes).
void GatherRanksViaWrapper(const void* events, size_t n,
                           const uint32_t* f_to_t, uint32_t* out);

inline uint32_t summit_(uint32_t x) { return x + 1; }

#endif  // FIXTURE_CLEAN_CONSUMER_H_
